//! Figure 10 (extension beyond the paper): where a command's latency goes,
//! stage by stage, in the thread-per-shard engine over real loopback TCP.
//!
//! fig8 reports end-to-end client latency; this report opens the box. A
//! 3-replica engine cluster runs over `transport::tcp::TcpMesh` sockets with
//! observability recording fully enabled — per-stage histograms, runtime
//! counters, and 1-in-N trace sampling — and a pipelined client drives node 0
//! through the fig9 50/50 update/read workload. Afterwards the report prints:
//!
//! * the per-stage latency table (p50/p99 per instrumentation station:
//!   submit queue, router ingress, mailbox dwell, in-place decode, protocol
//!   step, quorum wait, reply encode, socket write),
//! * the runtime introspection counters (router/worker parks, queue-depth
//!   high-water marks, mesh reconnects and coalescing shape, reactor
//!   readiness syscalls),
//! * real-clock client latency percentiles from an `obs::Histogram`,
//! * reconstructed timelines of the slowest sampled commands.
//!
//! Every number comes from the same allocation-free instruments the engine
//! ships with — this binary only snapshots and formats them, which doubles as
//! an end-to-end accounting audit of the instrumentation itself.
//!
//! Flags: `--quick` shortens the run (used by CI); `--check` exits non-zero
//! unless the run is clean (zero lost, zero duplicated replies) and the stage
//! accounting is exact: the submit-queue and quorum-wait histograms must each
//! have recorded exactly one sample per committed command, and every stage of
//! the command path must have data. The checks are pure accounting, so they
//! hold on any core count.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crdt::{CounterQuery, CounterUpdate, GCounter, LatticeMap, MapQuery, MapUpdate, ReplicaId};
use crdt_paxos_core::{ClientId, Command, ProtocolConfig, ShardEnvelope};
use engine::{EngineNode, Outbound};
use obs::{assemble_timelines, Histogram, ObsSnapshot, Stage, TraceConfig};
use transport::tcp::TcpMesh;

type KvMap = LatticeMap<u64, GCounter>;

/// Keys spread uniformly over the keyspace; the fig9 workload.
const KEYS: u64 = 64;
/// Commands kept in flight by the pipelined client.
const WINDOW: usize = 64;
/// Shards per engine replica.
const SHARDS: u32 = 4;
/// One in this many commands logs trace events at every station it passes.
const TRACE_SAMPLE: u64 = 16;
/// Slots per per-thread trace ring.
const TRACE_CAPACITY: usize = 4096;
/// How long the drain may take before in-flight commands count as lost.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// The engine -> mesh bridge: worker and router threads serialize each
/// destination run straight into the peer's recycled `send_with` batch buffer
/// (same shape as fig8's bridge).
struct TcpOutbound {
    mesh: Arc<TcpMesh>,
}

impl Outbound<u64, GCounter> for TcpOutbound {
    fn send(&self, envelope: ShardEnvelope<KvMap>) {
        let (to, message) = envelope.into_parts();
        let _ = self.mesh.send_with(to.as_u64(), |encoder| encoder.encode(&message));
    }

    fn send_batch(&self, envelopes: &mut Vec<ShardEnvelope<KvMap>>) {
        let mut index = 0;
        while index < envelopes.len() {
            let peer = envelopes[index].to;
            let mut end = index + 1;
            while end < envelopes.len() && envelopes[end].to == peer {
                end += 1;
            }
            let run = &envelopes[index..end];
            let _ = self.mesh.send_with(peer.as_u64(), |encoder| {
                for envelope in run {
                    encoder.encode(&envelope.message)?;
                }
                Ok(())
            });
            index = end;
        }
        envelopes.clear();
    }
}

struct Replica {
    node: Arc<EngineNode<u64, GCounter>>,
    tasks: Vec<tokio::JoinHandle<()>>,
}

/// Boots the 3-replica TCP cluster. Every node records stage histograms and
/// counters (always on); node 0 additionally samples traces.
async fn start_cluster(mesh_addrs: Vec<(u64, String)>) -> Vec<Replica> {
    let members: Vec<ReplicaId> =
        mesh_addrs.iter().map(|(peer, _)| ReplicaId::new(*peer)).collect();
    let mut replicas = Vec::new();
    for (id, listen) in mesh_addrs.iter().map(|(id, addr)| (*id, addr.clone())) {
        let mesh =
            Arc::new(TcpMesh::bind(id, &listen, &mesh_addrs).await.expect("bind replica mesh"));
        let trace = if id == 0 {
            TraceConfig::sampled(TRACE_SAMPLE, TRACE_CAPACITY)
        } else {
            TraceConfig::disabled()
        };
        let node = Arc::new(EngineNode::start_observed(
            ReplicaId::new(id),
            members.clone(),
            SHARDS,
            ProtocolConfig::default(),
            Arc::new(TcpOutbound { mesh: Arc::clone(&mesh) }),
            trace,
        ));
        // The mesh's socket-side stats join the node's registry, so one
        // snapshot covers the whole replica including its writer tasks.
        mesh.stats().register_into(&node.obs());
        let ingress = node.ingress();
        let recv_mesh = Arc::clone(&mesh);
        let tasks = vec![tokio::spawn(async move {
            while let Ok((from, frame)) = recv_mesh.recv_frame().await {
                ingress.deliver_frame(ReplicaId::new(from), frame);
            }
        })];
        replicas.push(Replica { node, tasks });
    }
    replicas
}

struct RunResult {
    committed: u64,
    lost: u64,
    duplicated: u64,
    elapsed: Duration,
}

/// Drives node 0 with the pipelined 50/50 workload for `duration`, recording
/// each command's real-clock latency into `latency`, then drains every
/// in-flight command.
fn drive(node: &EngineNode<u64, GCounter>, duration: Duration, latency: &Histogram) -> RunResult {
    let client = ClientId(1);
    let mut inflight: BTreeMap<_, Instant> = BTreeMap::new();
    let mut committed = 0u64;
    let mut duplicated = 0u64;
    let mut sequence = 0u64;
    let start = Instant::now();
    let deadline = start + duration;
    let settle = |inflight: &mut BTreeMap<_, Instant>, duplicated: &mut u64| {
        let response = node.wait_response(Duration::from_millis(1))?;
        match inflight.remove(&response.command) {
            Some(submitted) => {
                latency.record(submitted.elapsed().as_nanos() as u64);
                Some(1u64)
            }
            None => {
                *duplicated += 1;
                Some(0)
            }
        }
    };
    while Instant::now() < deadline {
        while inflight.len() < WINDOW {
            let key = sequence.wrapping_mul(0x9E3779B97F4A7C15) % KEYS;
            let command = if sequence.is_multiple_of(2) {
                Command::Update(MapUpdate::Apply { key, update: CounterUpdate::Increment(1) })
            } else {
                Command::Query(MapQuery::Get { key, query: CounterQuery::Value })
            };
            sequence += 1;
            let submitted = Instant::now();
            inflight.insert(node.submit(client, command), submitted);
        }
        if let Some(done) = settle(&mut inflight, &mut duplicated) {
            committed += done;
        }
    }
    let elapsed = start.elapsed();
    // Drain: every submitted command must still complete exactly once.
    let grace = Instant::now() + DRAIN_GRACE;
    while !inflight.is_empty() && Instant::now() < grace {
        if let Some(done) = settle(&mut inflight, &mut duplicated) {
            committed += done;
        }
    }
    RunResult { committed, lost: inflight.len() as u64, duplicated, elapsed }
}

/// One probe command end to end, proving the meshes connected and a quorum is
/// answering, so the measured window starts on a warm cluster.
fn warmup(node: &EngineNode<u64, GCounter>) -> bool {
    let give_up = Instant::now() + Duration::from_secs(30);
    let probe = ClientId(999_000_000);
    let mut outstanding = 0u32;
    while Instant::now() < give_up {
        node.submit(
            probe,
            Command::Update(MapUpdate::Apply { key: 0, update: CounterUpdate::Increment(1) }),
        );
        outstanding += 1;
        if node.wait_response(Duration::from_millis(200)).is_some() {
            outstanding -= 1;
            // Absorb any probes answered late so the measured run starts with
            // an empty response queue.
            while outstanding > 0 {
                if node.wait_response(Duration::from_millis(200)).is_some() {
                    outstanding -= 1;
                }
                if Instant::now() > give_up {
                    return false;
                }
            }
            return true;
        }
    }
    false
}

fn us(nanos: u64) -> f64 {
    nanos as f64 / 1_000.0
}

fn print_stage_table(snapshot: &ObsSnapshot) {
    println!();
    println!("-- node 0 per-stage latency (merged across router and workers) --");
    println!(
        "{:>16} {:>10} {:>12} {:>12} {:>12}",
        "stage", "samples", "p50(us)", "p99(us)", "max(us)"
    );
    for stage in Stage::ALL {
        let Some(histogram) = snapshot.histogram(&format!("stage_{}_nanos", stage.name())) else {
            continue;
        };
        if histogram.is_empty() {
            println!("{:>16} {:>10} {:>12} {:>12} {:>12}", stage.name(), 0, "-", "-", "-");
            continue;
        }
        println!(
            "{:>16} {:>10} {:>12.1} {:>12.1} {:>12.1}",
            stage.name(),
            histogram.count(),
            us(histogram.p50()),
            us(histogram.p99()),
            us(histogram.max()),
        );
    }
}

fn print_counters(snapshot: &ObsSnapshot, polls: u64, backend: &str) {
    println!();
    println!("-- node 0 runtime counters --");
    println!("  router parks                {:>12}", snapshot.counter("router_parks"));
    println!("  worker parks                {:>12}", snapshot.counter("worker_parks"));
    println!("  router ingress depth (hwm)  {:>12}", snapshot.highwater("router_ingress_depth"));
    println!("  submit queue depth (hwm)    {:>12}", snapshot.highwater("submit_queue_depth"));
    println!("  router feedback depth (hwm) {:>12}", snapshot.highwater("router_feedback_depth"));
    println!("  worker mailbox depth (hwm)  {:>12}", snapshot.highwater("worker_mailbox_depth"));
    println!("  mesh socket writes          {:>12}", snapshot.counter("mesh_socket_writes"));
    println!("  mesh reconnect attempts     {:>12}", snapshot.counter("mesh_reconnect_attempts"));
    if let Some(frames) = snapshot.histogram("mesh_frames_per_batch") {
        if !frames.is_empty() {
            println!(
                "  frames per coalesced write  {:>12.1} mean ({} max)",
                frames.mean(),
                frames.max()
            );
        }
    }
    if let Some(bytes) = snapshot.histogram("mesh_batch_bytes") {
        if !bytes.is_empty() {
            println!(
                "  bytes per coalesced write   {:>12.1} mean ({} max)",
                bytes.mean(),
                bytes.max()
            );
        }
    }
    println!("  reactor poll syscalls       {:>12} ({backend})", polls);
}

fn print_timelines(node: &EngineNode<u64, GCounter>) {
    let events = node.trace_events();
    let timelines = assemble_timelines(&events);
    println!();
    println!(
        "-- slowest sampled commands (1 in {} traced, {} events captured) --",
        TRACE_SAMPLE,
        events.len()
    );
    for timeline in timelines.iter().take(5) {
        let mut line =
            format!("  command {:>8} span {:>9.1}us:", timeline.command, us(timeline.span_nanos()));
        let mut previous = None;
        for (stage, at) in &timeline.events {
            match previous {
                None => line.push_str(&format!(" {}", stage.name())),
                Some(before) => line.push_str(&format!(
                    " -> (+{:.1}us) {}",
                    us(at.saturating_sub(before)),
                    stage.name()
                )),
            }
            previous = Some(*at);
        }
        println!("{line}");
    }
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let check = std::env::args().any(|arg| arg == "--check");
    let duration = if quick { Duration::from_millis(750) } else { Duration::from_millis(3000) };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "== fig10: per-stage latency breakdown, 3 engine replicas over loopback TCP \
         ({KEYS} keys, {SHARDS} shards, window {WINDOW}, {} ms run, {cores} core(s)) ==",
        duration.as_millis()
    );

    let mesh_addrs: Vec<(u64, String)> =
        (0..3u64).map(|id| (id, format!("127.0.0.1:{}", 21401 + id as u16))).collect();

    // The replicas' socket tasks run on the shim's shared worker pool, so
    // the blocking driver below can own the main thread.
    let replicas = tokio::runtime::block_on(start_cluster(mesh_addrs));
    assert!(warmup(&replicas[0].node), "cluster did not come up");
    eprintln!("[fig10] warmed up, driving for {} ms", duration.as_millis());
    // The warmup probes went through the same stations; the accounting check
    // below compares against this baseline so it covers exactly the measured
    // run.
    let baseline = replicas[0].node.obs_snapshot();

    let latency = Histogram::new();
    let result = drive(&replicas[0].node, duration, &latency);
    let snapshot = replicas[0].node.obs_snapshot();
    let (polls, backend) = tokio::reactor_stats();
    print_timelines(&replicas[0].node);
    for replica in &replicas {
        for task in &replica.tasks {
            task.abort();
        }
    }

    println!();
    println!(
        "committed {} ops in {:.1}s ({:.0} ops/s), {} lost, {} duplicated",
        result.committed,
        result.elapsed.as_secs_f64(),
        result.committed as f64 / result.elapsed.as_secs_f64(),
        result.lost,
        result.duplicated,
    );
    let client = latency.snapshot();
    println!(
        "client latency: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  p99.9 {:.1}us  (n={})",
        us(client.p50()),
        us(client.p90()),
        us(client.p99()),
        us(client.p999()),
        client.count(),
    );

    print_stage_table(&snapshot);
    print_counters(&snapshot, polls, backend);

    if check {
        let mut failed = false;
        if result.lost > 0 || result.duplicated > 0 || result.committed == 0 {
            eprintln!(
                "ACCEPTANCE FAILED: {} committed, {} lost, {} duplicated (need clean > 0)",
                result.committed, result.lost, result.duplicated
            );
            failed = true;
        }
        // Exact stage accounting: node 0 is the only submit ingress and no
        // rebalance runs, so the submit-queue and quorum-wait histograms must
        // have seen exactly one sample per completed command — any drift means
        // a lost or double-counted measurement.
        for name in ["stage_submit_queue_nanos", "stage_quorum_wait_nanos"] {
            let samples = snapshot.histogram(name).map(|h| h.count()).unwrap_or(0)
                - baseline.histogram(name).map(|h| h.count()).unwrap_or(0);
            if samples != result.committed {
                eprintln!(
                    "ACCEPTANCE FAILED: {name} recorded {samples} samples for {} committed \
                     commands",
                    result.committed
                );
                failed = true;
            }
        }
        // Every station on the command path must have data, including the
        // frame decode (peer acks arrive encoded) and the mesh's socket
        // writes.
        for stage in Stage::ALL {
            let name = format!("stage_{}_nanos", stage.name());
            if snapshot.histogram(&name).map(|h| h.count()).unwrap_or(0) == 0 {
                eprintln!("ACCEPTANCE FAILED: no samples recorded for {name}");
                failed = true;
            }
        }
        if client.count() != result.committed {
            eprintln!(
                "ACCEPTANCE FAILED: client latency histogram holds {} samples for {} committed",
                client.count(),
                result.committed
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!();
        println!("CHECK PASSED: clean run, every stage populated, submit/quorum accounting exact");
    }
}
