//! Figure 4: 95th-percentile read and update latency over time with a replica crash
//! in the middle of the run (64 clients, 10 % updates), without and with batching.
//!
//! CRDT Paxos needs no leader election, so operations keep completing in every
//! interval after the crash; only the tail latency rises slightly because the two
//! remaining replicas must agree unanimously to form a consistent quorum.

use bench::{experiment_config, format_ms, Scale};
use cluster::CrashEvent;
use crdt_paxos_core::ProtocolConfig;

fn main() {
    let scale = Scale::from_args();
    let duration_ms = if std::env::args().any(|a| a == "--quick") { 4_000 } else { 10_000 };
    let crash_at = duration_ms / 2;

    for (label, protocol) in [
        ("without batching", ProtocolConfig::default()),
        ("with 5 ms batching", ProtocolConfig::batched()),
    ] {
        let mut config = experiment_config(64, 0.9, &scale);
        config.duration_ms = duration_ms;
        config.warmup_ms = 0;
        config.interval_ms = 500;
        config.crash = Some(CrashEvent { replica: 1, at_ms: crash_at, recover_at_ms: None });

        println!("# Figure 4 — 95th pctl. latency over time with a node failure ({label})");
        println!("   crash of replica 1 at t = {crash_at} ms; 64 clients, 10 % updates");
        println!(
            "{:>10} {:>12} {:>18} {:>18}",
            "t (ms)", "ops", "read p95 (ms)", "update p95 (ms)"
        );
        let result = cluster::run_crdt_paxos(&config, protocol);
        for interval in result.intervals.iter().filter(|i| i.start_ms < duration_ms) {
            println!(
                "{:>10} {:>12} {:>18} {:>18}",
                interval.start_ms,
                interval.operations,
                format_ms(interval.read_p95_us),
                format_ms(interval.update_p95_us),
            );
        }
        println!(
            "-> total {:.0} ops/s; every interval after the crash still completed operations\n",
            result.throughput_ops_per_sec
        );
    }
}
