//! Micro-benchmarks of the CRDT substrate: join and update throughput.

use crdt::{GCounter, Lattice, ORSet, ReplicaId};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn gcounter_of(replicas: u64, per_replica: u64) -> GCounter {
    let mut counter = GCounter::new();
    for replica in 0..replicas {
        counter.increment(ReplicaId::new(replica), per_replica);
    }
    counter
}

fn bench_crdt_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("crdt");
    group.sample_size(20);

    group.bench_function("gcounter_increment", |b| {
        b.iter_batched(
            || gcounter_of(3, 100),
            |mut counter| counter.increment(ReplicaId::new(0), 1),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("gcounter_join_3_replicas", |b| {
        let other = gcounter_of(3, 1000);
        b.iter_batched(
            || gcounter_of(3, 100),
            |mut counter| counter.join(&other),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("orset_insert_1000_elements", |b| {
        b.iter(|| {
            let mut set = ORSet::new();
            for i in 0..1000u32 {
                set.insert(ReplicaId::new(u64::from(i % 3)), i);
            }
            set.len()
        });
    });

    group.bench_function("orset_join_disjoint_500", |b| {
        let mut left: ORSet<u32> = ORSet::new();
        let mut right: ORSet<u32> = ORSet::new();
        for i in 0..500u32 {
            left.insert(ReplicaId::new(0), i);
            right.insert(ReplicaId::new(1), i + 500);
        }
        b.iter_batched(|| left.clone(), |mut l| l.join(&right), BatchSize::SmallInput);
    });

    group.finish();
}

criterion_group!(benches, bench_crdt_ops);
criterion_main!(benches);
