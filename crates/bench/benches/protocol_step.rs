//! Micro-benchmarks of the protocol state machines: how fast can a replica process
//! an update or a query round when messages are delivered instantly (no network)?
//!
//! The `kv_*_round_16_keys` cases replicate a `LatticeMap<u64, GCounter>` with 16
//! populated keys — the per-shard state shape of the sharded keyspace workloads —
//! and are what `cluster::CALIBRATED_SERVICE_TIME_US` (the simulator's CPU model)
//! is derived from: one round is one submit plus four remote message handlings, so
//! per-message cost ≈ round time / 4.

use crdt::{CounterQuery, CounterUpdate, GCounter, LatticeMap, MapQuery, MapUpdate, ReplicaId};
use crdt_paxos_core::{ClientId, Command, ProtocolConfig, Replica};
use criterion::{criterion_group, criterion_main, Criterion};

type KvMap = LatticeMap<u64, GCounter>;

fn cluster(n: u64) -> Vec<Replica<GCounter>> {
    let ids: Vec<ReplicaId> = (0..n).map(ReplicaId::new).collect();
    ids.iter()
        .map(|&id| Replica::new(id, ids.clone(), GCounter::default(), ProtocolConfig::default()))
        .collect()
}

fn run_to_quiescence(replicas: &mut [Replica<GCounter>]) {
    loop {
        let mut envelopes = Vec::new();
        for replica in replicas.iter_mut() {
            envelopes.extend(replica.take_outbox());
        }
        if envelopes.is_empty() {
            break;
        }
        for env in envelopes {
            let index = env.to.as_u64() as usize;
            replicas[index].handle_message(env.from, env.message);
        }
    }
}

/// A keyspace cluster with `keys` pre-populated entries per replica state — the
/// per-shard state shape of the uniform sharded workloads (64 keys / 4-8 shards).
fn kv_cluster(n: u64, keys: u64) -> Vec<Replica<KvMap>> {
    let ids: Vec<ReplicaId> = (0..n).map(ReplicaId::new).collect();
    let mut replicas: Vec<Replica<KvMap>> = ids
        .iter()
        .map(|&id| Replica::new(id, ids.clone(), KvMap::default(), ProtocolConfig::default()))
        .collect();
    for key in 0..keys {
        replicas[0].submit(
            ClientId(0),
            Command::Update(MapUpdate::Apply { key, update: CounterUpdate::Increment(1) }),
        );
        kv_run_to_quiescence(&mut replicas);
        replicas[0].take_responses();
    }
    replicas
}

fn kv_run_to_quiescence(replicas: &mut [Replica<KvMap>]) {
    loop {
        let mut envelopes = Vec::new();
        for replica in replicas.iter_mut() {
            envelopes.extend(replica.take_outbox());
        }
        if envelopes.is_empty() {
            break;
        }
        for env in envelopes {
            let index = env.to.as_u64() as usize;
            replicas[index].handle_message(env.from, env.message);
        }
    }
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(20);

    group.bench_function("update_round_3_replicas", |b| {
        let mut replicas = cluster(3);
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[0].submit(ClientId(client), Command::Update(CounterUpdate::Increment(1)));
            run_to_quiescence(&mut replicas);
            replicas[0].take_responses().len()
        });
    });

    group.bench_function("query_round_3_replicas", |b| {
        let mut replicas = cluster(3);
        replicas[0].submit(ClientId(0), Command::Update(CounterUpdate::Increment(1)));
        run_to_quiescence(&mut replicas);
        replicas[0].take_responses();
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[1].submit(ClientId(client), Command::Query(CounterQuery::Value));
            run_to_quiescence(&mut replicas);
            replicas[1].take_responses().len()
        });
    });

    group.bench_function("kv_update_round_16_keys", |b| {
        let mut replicas = kv_cluster(3, 16);
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[0].submit(
                ClientId(client),
                Command::Update(MapUpdate::Apply {
                    key: client % 16,
                    update: CounterUpdate::Increment(1),
                }),
            );
            kv_run_to_quiescence(&mut replicas);
            replicas[0].take_responses().len()
        });
    });

    group.bench_function("kv_query_round_16_keys", |b| {
        let mut replicas = kv_cluster(3, 16);
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[1].submit(
                ClientId(client),
                Command::Query(MapQuery::Get { key: client % 16, query: CounterQuery::Value }),
            );
            kv_run_to_quiescence(&mut replicas);
            replicas[1].take_responses().len()
        });
    });

    group.bench_function("mixed_round_5_replicas", |b| {
        let mut replicas = cluster(5);
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[(client % 5) as usize]
                .submit(ClientId(client), Command::Update(CounterUpdate::Increment(1)));
            replicas[((client + 1) % 5) as usize]
                .submit(ClientId(client), Command::Query(CounterQuery::Value));
            run_to_quiescence(&mut replicas);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
