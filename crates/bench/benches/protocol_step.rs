//! Micro-benchmarks of the protocol state machines: how fast can a replica process
//! an update or a query round when messages are delivered instantly (no network)?

use crdt::{CounterQuery, CounterUpdate, GCounter, ReplicaId};
use crdt_paxos_core::{ClientId, Command, ProtocolConfig, Replica};
use criterion::{criterion_group, criterion_main, Criterion};

fn cluster(n: u64) -> Vec<Replica<GCounter>> {
    let ids: Vec<ReplicaId> = (0..n).map(ReplicaId::new).collect();
    ids.iter()
        .map(|&id| Replica::new(id, ids.clone(), GCounter::default(), ProtocolConfig::default()))
        .collect()
}

fn run_to_quiescence(replicas: &mut [Replica<GCounter>]) {
    loop {
        let mut envelopes = Vec::new();
        for replica in replicas.iter_mut() {
            envelopes.extend(replica.take_outbox());
        }
        if envelopes.is_empty() {
            break;
        }
        for env in envelopes {
            let index = env.to.as_u64() as usize;
            replicas[index].handle_message(env.from, env.message);
        }
    }
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(20);

    group.bench_function("update_round_3_replicas", |b| {
        let mut replicas = cluster(3);
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[0].submit(ClientId(client), Command::Update(CounterUpdate::Increment(1)));
            run_to_quiescence(&mut replicas);
            replicas[0].take_responses().len()
        });
    });

    group.bench_function("query_round_3_replicas", |b| {
        let mut replicas = cluster(3);
        replicas[0].submit(ClientId(0), Command::Update(CounterUpdate::Increment(1)));
        run_to_quiescence(&mut replicas);
        replicas[0].take_responses();
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[1].submit(ClientId(client), Command::Query(CounterQuery::Value));
            run_to_quiescence(&mut replicas);
            replicas[1].take_responses().len()
        });
    });

    group.bench_function("mixed_round_5_replicas", |b| {
        let mut replicas = cluster(5);
        let mut client = 0u64;
        b.iter(|| {
            client += 1;
            replicas[(client % 5) as usize]
                .submit(ClientId(client), Command::Update(CounterUpdate::Increment(1)));
            replicas[((client + 1) % 5) as usize]
                .submit(ClientId(client), Command::Query(CounterQuery::Value));
            run_to_quiescence(&mut replicas);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
