//! Micro-benchmarks of the wire codec: encoding/decoding protocol messages,
//! including the full-vs-delta MERGE payload comparison (64-slot counter case)
//! and the decode-side split between owned decoding (`from_slice`, allocates
//! the payload) and in-place decoding into a reused scratch message
//! (`from_slice_in_place`, the engine worker's steady state).

use bytes::Bytes;
use crdt::{DeltaCrdt, GCounter, LatticeMap, ReplicaId};
use crdt_paxos_core::{Message, Payload, RequestId, Round, RoundId, ShardEnvelope, ShardMessage};
use criterion::{criterion_group, criterion_main, Criterion};
use quorum::ShardId;

fn wide_state(slots: u64) -> GCounter {
    let mut state = GCounter::new();
    for replica in 0..slots {
        state.increment(ReplicaId::new(replica), replica * 1000 + 17);
    }
    state
}

fn sample_message(slots: u64) -> Message<GCounter> {
    Message::PrepareAck {
        request: RequestId(42),
        round: Round::new(7, RoundId::proposer(3, ReplicaId::new(1))),
        state: Payload::Full(wide_state(slots)),
        reveal: 1,
        basis: 0,
    }
}

/// The MERGE a proposer sends in `Full` mode after one increment on a wide counter.
fn merge_full(slots: u64) -> Message<GCounter> {
    let mut state = wide_state(slots);
    state.increment(ReplicaId::new(0), 1);
    Message::Merge { request: RequestId(42), payload: Payload::Full(state) }
}

/// The same MERGE in `DeltaWhenPossible` mode: a single-slot delta.
fn merge_delta(slots: u64) -> Message<GCounter> {
    let known = wide_state(slots);
    let mut state = known.clone();
    state.increment(ReplicaId::new(0), 1);
    Message::Merge { request: RequestId(42), payload: Payload::Delta(state.delta_since(&known)) }
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.sample_size(30);

    for slots in [3u64, 64] {
        let message = sample_message(slots);
        let encoded = wire::to_vec(&message).unwrap();
        group.bench_function(format!("encode_ack_{slots}_slots"), |b| {
            b.iter(|| wire::to_vec(&message).unwrap().len());
        });
        group.bench_function(format!("decode_ack_{slots}_slots"), |b| {
            b.iter(|| {
                let decoded: Message<GCounter> = wire::from_slice(&encoded).unwrap();
                decoded.kind()
            });
        });
    }

    for (label, message) in [
        ("encode_merge_full_64_slots", merge_full(64)),
        ("encode_merge_delta_64_slots", merge_delta(64)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| wire::to_vec(&message).unwrap().len());
        });
    }

    group.bench_function("encode_merge_ack", |b| {
        let ack: Message<GCounter> = Message::MergeAck { request: RequestId(7) };
        b.iter(|| wire::to_vec(&ack).unwrap().len());
    });

    // Decode side: owned (`from_slice` builds a fresh message, allocating its
    // payload) vs in-place (`from_slice_in_place` rewrites a reused scratch
    // message — the engine worker's steady state, allocation-free once the
    // scratch has taken the frame's shape).
    for (label, message) in [
        ("decode_merge_full_64_slots", merge_full(64)),
        ("decode_merge_delta_64_slots", merge_delta(64)),
    ] {
        let encoded = wire::to_vec(&message).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let decoded: Message<GCounter> = wire::from_slice(&encoded).unwrap();
                decoded.kind()
            });
        });
        group.bench_function(format!("{label}_in_place"), |b| {
            let mut scratch: Message<GCounter> = Message::MergeAck { request: RequestId(0) };
            b.iter(|| {
                wire::from_slice_in_place(&encoded, &mut scratch).unwrap();
                scratch.kind()
            });
        });
    }

    // The frame a TCP peer actually decodes: the stamped shard envelope around
    // a keyed delta merge, via the `Bytes`-backed entry point the transport
    // uses.
    {
        type Kv = LatticeMap<u64, GCounter>;
        let known = wide_state(64);
        let mut state = known.clone();
        state.increment(ReplicaId::new(0), 1);
        let envelope = ShardEnvelope::<Kv> {
            from: ReplicaId::new(0),
            to: ReplicaId::new(1),
            message: ShardMessage::Protocol {
                epoch: 3,
                shards: 8,
                shard: ShardId(5),
                message: Message::Merge {
                    request: RequestId(42),
                    payload: Payload::Delta({
                        let mut map = LatticeMap::default();
                        map.merge_entry(7, &state.delta_since(&known));
                        map
                    }),
                },
            },
        };
        let frame = Bytes::from(wire::to_vec(&envelope).unwrap());
        group.bench_function("decode_shard_envelope", |b| {
            b.iter(|| {
                let decoded: ShardEnvelope<Kv> = wire::from_bytes(&frame).unwrap();
                decoded.to
            });
        });
        group.bench_function("decode_shard_envelope_in_place", |b| {
            let mut scratch: ShardEnvelope<Kv> = envelope.clone();
            b.iter(|| {
                wire::from_bytes_in_place(&frame, &mut scratch).unwrap();
                scratch.to
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
