//! Micro-benchmarks of the wire codec: encoding/decoding protocol messages.

use crdt::{GCounter, ReplicaId};
use crdt_paxos_core::{Message, RequestId, Round, RoundId};
use criterion::{criterion_group, criterion_main, Criterion};

fn sample_message(slots: u64) -> Message<GCounter> {
    let mut state = GCounter::new();
    for replica in 0..slots {
        state.increment(ReplicaId::new(replica), replica * 1000 + 17);
    }
    Message::PrepareAck {
        request: RequestId(42),
        round: Round::new(7, RoundId::proposer(3, ReplicaId::new(1))),
        state,
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.sample_size(30);

    for slots in [3u64, 64] {
        let message = sample_message(slots);
        let encoded = wire::to_vec(&message).unwrap();
        group.bench_function(format!("encode_ack_{slots}_slots"), |b| {
            b.iter(|| wire::to_vec(&message).unwrap().len());
        });
        group.bench_function(format!("decode_ack_{slots}_slots"), |b| {
            b.iter(|| {
                let decoded: Message<GCounter> = wire::from_slice(&encoded).unwrap();
                decoded.kind()
            });
        });
    }

    group.bench_function("encode_merge_ack", |b| {
        let ack: Message<GCounter> = Message::MergeAck { request: RequestId(7) };
        b.iter(|| wire::to_vec(&ack).unwrap().len());
    });

    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
