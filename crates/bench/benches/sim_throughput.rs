//! End-to-end benchmark: how much simulated cluster time per wall-clock second the
//! harness achieves for each protocol (a sanity check that the figure harnesses are
//! tractable), plus an ablation of the batching optimization.

use cluster::SimConfig;
use crdt_paxos_core::ProtocolConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn quick_config() -> SimConfig {
    SimConfig {
        clients: 32,
        read_fraction: 0.9,
        duration_ms: 500,
        warmup_ms: 100,
        ..SimConfig::default()
    }
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);

    group.bench_function("crdt_paxos_500ms_32_clients", |b| {
        b.iter(|| {
            cluster::run_crdt_paxos(&quick_config(), ProtocolConfig::default()).completed_reads
        });
    });

    group.bench_function("crdt_paxos_batched_500ms_32_clients", |b| {
        b.iter(|| {
            cluster::run_crdt_paxos(&quick_config(), ProtocolConfig::batched()).completed_reads
        });
    });

    group.bench_function("raft_500ms_32_clients", |b| {
        b.iter(|| cluster::run_raft(&quick_config()).completed_reads);
    });

    group.bench_function("multi_paxos_500ms_32_clients", |b| {
        b.iter(|| cluster::run_multi_paxos(&quick_config()).completed_reads);
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
