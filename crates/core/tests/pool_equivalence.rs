//! Pooled ↔ fresh outbound construction equivalence laws.
//!
//! The outbound hot path drains replies into recycled storage — batch shells
//! checked out of an [`EnvelopePool`] and frames serialized into a persistent
//! [`FrameEncoder`] whose buffer cycles between rounds — while tests and cold
//! paths build everything fresh (`take_outbox` plus a new encoder per
//! envelope). These properties pin the two construction paths to each other
//! over generated protocol histories: byte-identical wire output on every
//! drain, including drains straddling the lifecycle events that could leave
//! stale state behind in recycled storage ([`Replica::cancel_in_flight`],
//! [`ShardedReplica::install_plan`] rebalances).

use crdt::{CounterQuery, CounterUpdate, GCounter, LatticeMap, MapQuery, MapUpdate, ReplicaId};
use crdt_paxos_core::{
    ClientId, Command, Envelope, EnvelopePool, Message, Payload, PrepareRound, ProtocolConfig,
    RebalancePlan, Replica, RequestId, Round, RoundId, ShardEnvelope, ShardMessage, ShardedReplica,
};
use proptest::prelude::*;
use quorum::ShardId;
use wire::framing::FrameEncoder;

type Kv = LatticeMap<u64, GCounter>;

fn arb_counter() -> impl Strategy<Value = GCounter> {
    proptest::collection::vec((0u64..8, 1u64..1000), 0..6).prop_map(|slots| {
        let mut counter = GCounter::new();
        for (replica, amount) in slots {
            counter.increment(ReplicaId::new(replica), amount);
        }
        counter
    })
}

fn arb_map() -> impl Strategy<Value = Kv> {
    proptest::collection::vec((0u64..16, arb_counter()), 0..4).prop_map(|entries| {
        let mut map = Kv::default();
        for (key, counter) in entries {
            map.merge_entry(key, &counter);
        }
        map
    })
}

fn arb_payload() -> impl Strategy<Value = Payload<Kv>> {
    prop_oneof![arb_map().prop_map(Payload::Full), arb_map().prop_map(Payload::Delta)]
}

fn arb_round() -> impl Strategy<Value = Round> {
    (0u64..1000, 0u64..100, 0u64..8).prop_map(|(number, seq, id)| {
        Round::new(number, RoundId::proposer(seq, ReplicaId::new(id)))
    })
}

fn arb_message() -> impl Strategy<Value = Message<Kv>> {
    prop_oneof![
        (any::<u64>(), arb_payload())
            .prop_map(|(request, payload)| Message::Merge { request: RequestId(request), payload }),
        any::<u64>().prop_map(|request| Message::MergeAck { request: RequestId(request) }),
        (any::<u64>(), arb_round(), proptest::option::of(arb_payload()), 0u64..100).prop_map(
            |(request, round, payload, basis)| Message::Prepare {
                request: RequestId(request),
                round: PrepareRound::Fixed(round),
                payload,
                basis,
            }
        ),
        (any::<u64>(), arb_round(), arb_payload(), 0u64..100, 0u64..100).prop_map(
            |(request, round, state, reveal, basis)| Message::PrepareAck {
                request: RequestId(request),
                round,
                state,
                reveal,
                basis,
            }
        ),
        (any::<u64>(), arb_round(), arb_payload(), 0u64..100).prop_map(
            |(request, round, payload, basis)| Message::Vote {
                request: RequestId(request),
                round,
                payload,
                basis,
            }
        ),
    ]
}

/// One stimulus applied identically to both construction twins.
#[derive(Debug, Clone)]
enum Op {
    Update { client: u64, key: u64, amount: u64 },
    Query { client: u64, key: u64 },
    Deliver { from: u64, message: Message<Kv> },
    Tick { advance: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4, 0u64..16, 1u64..100).prop_map(|(client, key, amount)| Op::Update {
            client,
            key,
            amount
        }),
        (0u64..4, 0u64..16).prop_map(|(client, key)| Op::Query { client, key }),
        (1u64..3, arb_message()).prop_map(|(from, message)| Op::Deliver { from, message }),
        (1u64..40).prop_map(|advance| Op::Tick { advance }),
    ]
}

fn apply(replica: &mut Replica<Kv>, op: &Op, now_ms: &mut u64) {
    match op {
        Op::Update { client, key, amount } => {
            replica.submit(
                ClientId(*client),
                Command::Update(MapUpdate::Apply {
                    key: *key,
                    update: CounterUpdate::Increment(*amount),
                }),
            );
        }
        Op::Query { client, key } => {
            replica.submit(
                ClientId(*client),
                Command::Query(MapQuery::Get { key: *key, query: CounterQuery::Value }),
            );
        }
        Op::Deliver { from, message } => {
            replica.handle_message(ReplicaId::new(*from), message.clone());
        }
        Op::Tick { advance } => {
            *now_ms += advance;
            replica.tick(*now_ms);
        }
    }
}

/// The fresh-allocation construction: `take_outbox` hands out a brand-new
/// vector of owned envelopes and every frame goes through its own encoder.
fn drain_fresh(replica: &mut Replica<Kv>) -> Vec<u8> {
    let mut bytes = Vec::new();
    for envelope in replica.take_outbox() {
        let mut encoder = FrameEncoder::new();
        encoder.encode(&envelope).expect("fresh encode");
        bytes.extend_from_slice(&encoder.take());
    }
    bytes
}

/// The recycled construction: shells drain into a pool-checked-out batch and
/// frames serialize into a persistent encoder whose buffer cycles via `take`.
fn drain_pooled(
    replica: &mut Replica<Kv>,
    pool: &mut EnvelopePool<Envelope<Kv>>,
    encoder: &mut FrameEncoder,
) -> Vec<u8> {
    let mut batch = pool.checkout();
    assert!(batch.is_empty(), "checked-out batches must carry no stale shells");
    replica.drain_outbox_into(&mut batch);
    for envelope in &batch {
        encoder.encode(envelope).expect("pooled encode");
    }
    pool.give_back(batch);
    encoder.take().to_vec()
}

fn twins() -> (Replica<Kv>, Replica<Kv>) {
    let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
    let fresh = Replica::new(ids[0], ids.clone(), Kv::default(), ProtocolConfig::default());
    let pooled = Replica::new(ids[0], ids, Kv::default(), ProtocolConfig::default());
    (fresh, pooled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replies drained through recycled pool batches and a cycling encoder
    /// are byte-identical on the wire to replies built with fresh
    /// allocations, at every drain point of a generated history.
    #[test]
    fn pooled_and_fresh_reply_construction_agree(
        ops in proptest::collection::vec(arb_op(), 1..24),
        drain_every in 1usize..4,
    ) {
        let (mut fresh, mut pooled) = twins();
        let mut pool = EnvelopePool::default();
        let mut encoder = FrameEncoder::new();
        let (mut fresh_now, mut pooled_now) = (0u64, 0u64);
        for (index, op) in ops.iter().enumerate() {
            apply(&mut fresh, op, &mut fresh_now);
            apply(&mut pooled, op, &mut pooled_now);
            if index % drain_every == 0 {
                let expected = drain_fresh(&mut fresh);
                let recycled = drain_pooled(&mut pooled, &mut pool, &mut encoder);
                prop_assert_eq!(expected, recycled, "drain after op {} diverged", index);
            }
        }
        let expected = drain_fresh(&mut fresh);
        let recycled = drain_pooled(&mut pooled, &mut pool, &mut encoder);
        prop_assert_eq!(expected, recycled);
    }

    /// Cancelling every in-flight request mid-history must not leave stale
    /// shells or bytes in the recycled storage: the post-cancel drains still
    /// match the fresh-allocation twin byte for byte.
    #[test]
    fn recycled_storage_is_clean_after_cancel_in_flight(
        before in proptest::collection::vec(arb_op(), 1..12),
        after in proptest::collection::vec(arb_op(), 1..12),
    ) {
        let (mut fresh, mut pooled) = twins();
        let mut pool = EnvelopePool::default();
        let mut encoder = FrameEncoder::new();
        let (mut fresh_now, mut pooled_now) = (0u64, 0u64);
        for op in &before {
            apply(&mut fresh, op, &mut fresh_now);
            apply(&mut pooled, op, &mut pooled_now);
        }
        // Warm the recycled storage with the pre-cancel traffic, then cancel
        // with replies still potentially in flight on both twins.
        let expected = drain_fresh(&mut fresh);
        let recycled = drain_pooled(&mut pooled, &mut pool, &mut encoder);
        prop_assert_eq!(expected, recycled);
        fresh.cancel_in_flight();
        pooled.cancel_in_flight();
        for op in &after {
            apply(&mut fresh, op, &mut fresh_now);
            apply(&mut pooled, op, &mut pooled_now);
            let expected = drain_fresh(&mut fresh);
            let recycled = drain_pooled(&mut pooled, &mut pool, &mut encoder);
            prop_assert_eq!(expected, recycled);
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded plane: the same laws across an epoch-fenced rebalance.
// ---------------------------------------------------------------------------

fn arb_shard_message() -> impl Strategy<Value = ShardMessage<Kv>> {
    prop_oneof![
        (0u64..3, 1u32..8, 0u32..8, arb_message()).prop_map(|(epoch, shards, shard, message)| {
            ShardMessage::Protocol { epoch, shards, shard: ShardId(shard % shards), message }
        }),
        Just(ShardMessage::PlanRequest),
    ]
}

#[derive(Debug, Clone)]
enum ShardOp {
    Update { client: u64, key: u64, amount: u64 },
    Deliver { from: u64, message: ShardMessage<Kv> },
    Tick { advance: u64 },
}

fn arb_shard_op() -> impl Strategy<Value = ShardOp> {
    prop_oneof![
        (0u64..4, 0u64..64, 1u64..100).prop_map(|(client, key, amount)| ShardOp::Update {
            client,
            key,
            amount
        }),
        (1u64..3, arb_shard_message())
            .prop_map(|(from, message)| ShardOp::Deliver { from, message }),
        (1u64..40).prop_map(|advance| ShardOp::Tick { advance }),
    ]
}

fn apply_shard(replica: &mut ShardedReplica<u64, GCounter>, op: &ShardOp, now_ms: &mut u64) {
    match op {
        ShardOp::Update { client, key, amount } => {
            replica.submit_update(ClientId(*client), *key, CounterUpdate::Increment(*amount));
        }
        ShardOp::Deliver { from, message } => {
            replica.handle_message(ReplicaId::new(*from), message.clone());
        }
        ShardOp::Tick { advance } => {
            *now_ms += advance;
            replica.tick(*now_ms);
        }
    }
}

fn drain_shard_fresh(replica: &mut ShardedReplica<u64, GCounter>) -> Vec<u8> {
    let mut bytes = Vec::new();
    for envelope in replica.take_outbox() {
        let mut encoder = FrameEncoder::new();
        encoder.encode(&envelope).expect("fresh encode");
        bytes.extend_from_slice(&encoder.take());
    }
    bytes
}

fn drain_shard_pooled(
    replica: &mut ShardedReplica<u64, GCounter>,
    pool: &mut EnvelopePool<ShardEnvelope<Kv>>,
    encoder: &mut FrameEncoder,
) -> Vec<u8> {
    let mut batch = pool.checkout();
    assert!(batch.is_empty(), "checked-out batches must carry no stale shells");
    replica.drain_outbox_into(&mut batch);
    for envelope in &batch {
        encoder.encode(envelope).expect("pooled encode");
    }
    pool.give_back(batch);
    encoder.take().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An epoch-fenced rebalance re-homes every shard instance (handoffs,
    /// deferred-message replays, control traffic). None of it may leave stale
    /// shells or bytes behind in the recycled storage: drains on both sides
    /// of `install_plan` match the fresh-allocation twin byte for byte.
    #[test]
    fn recycled_storage_is_clean_across_rebalance(
        before in proptest::collection::vec(arb_shard_op(), 1..10),
        after in proptest::collection::vec(arb_shard_op(), 1..10),
        plan_shards in 1u32..8,
    ) {
        let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
        let mut fresh: ShardedReplica<u64, GCounter> =
            ShardedReplica::new(ids[0], ids.clone(), 4, ProtocolConfig::default());
        let mut pooled: ShardedReplica<u64, GCounter> =
            ShardedReplica::new(ids[0], ids, 4, ProtocolConfig::default());
        let mut pool = EnvelopePool::default();
        let mut encoder = FrameEncoder::new();
        let (mut fresh_now, mut pooled_now) = (0u64, 0u64);
        for op in &before {
            apply_shard(&mut fresh, op, &mut fresh_now);
            apply_shard(&mut pooled, op, &mut pooled_now);
        }
        let expected = drain_shard_fresh(&mut fresh);
        let recycled = drain_shard_pooled(&mut pooled, &mut pool, &mut encoder);
        prop_assert_eq!(expected, recycled);
        let plan = RebalancePlan { epoch: 1, shards: plan_shards };
        fresh.install_plan(plan);
        pooled.install_plan(plan);
        for op in &after {
            apply_shard(&mut fresh, op, &mut fresh_now);
            apply_shard(&mut pooled, op, &mut pooled_now);
            let expected = drain_shard_fresh(&mut fresh);
            let recycled = drain_shard_pooled(&mut pooled, &mut pool, &mut encoder);
            prop_assert_eq!(expected, recycled);
        }
    }
}
