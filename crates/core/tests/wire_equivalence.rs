//! Owned ↔ borrowed decode equivalence laws for the wire codec.
//!
//! The inbound hot path decodes straight from refcounted [`bytes::Bytes`]
//! views of the socket read buffer (`wire::from_bytes`), while tests, tools,
//! and the cold paths decode from plain slices (`wire::from_slice`). These
//! properties pin the two entry points to each other over generated protocol
//! envelopes: identical values on every complete encoding, identical
//! accept/reject verdicts on every truncated prefix, and frame views that
//! stay valid after the decoder that produced them is gone.

use bytes::Bytes;
use crdt::{GCounter, LatticeMap, ReplicaId};
use crdt_paxos_core::{
    Envelope, Message, Payload, PrepareRound, RequestId, Round, RoundId, ShardEnvelope,
    ShardMessage,
};
use proptest::prelude::*;
use quorum::ShardId;
use wire::framing::{FrameDecoder, FrameEncoder};

type Kv = LatticeMap<u64, GCounter>;

fn arb_counter() -> impl Strategy<Value = GCounter> {
    proptest::collection::vec((0u64..8, 1u64..1000), 0..6).prop_map(|slots| {
        let mut counter = GCounter::new();
        for (replica, amount) in slots {
            counter.increment(ReplicaId::new(replica), amount);
        }
        counter
    })
}

fn arb_map() -> impl Strategy<Value = Kv> {
    proptest::collection::vec((0u64..16, arb_counter()), 0..4).prop_map(|entries| {
        let mut map = Kv::default();
        for (key, counter) in entries {
            map.merge_entry(key, &counter);
        }
        map
    })
}

fn arb_payload() -> impl Strategy<Value = Payload<Kv>> {
    prop_oneof![arb_map().prop_map(Payload::Full), arb_map().prop_map(Payload::Delta)]
}

fn arb_round() -> impl Strategy<Value = Round> {
    (0u64..1000, 0u64..100, 0u64..8).prop_map(|(number, seq, id)| {
        Round::new(number, RoundId::proposer(seq, ReplicaId::new(id)))
    })
}

fn arb_message() -> impl Strategy<Value = Message<Kv>> {
    prop_oneof![
        (any::<u64>(), arb_payload())
            .prop_map(|(request, payload)| Message::Merge { request: RequestId(request), payload }),
        any::<u64>().prop_map(|request| Message::MergeAck { request: RequestId(request) }),
        (any::<u64>(), arb_round(), proptest::option::of(arb_payload()), 0u64..100).prop_map(
            |(request, round, payload, basis)| Message::Prepare {
                request: RequestId(request),
                round: PrepareRound::Fixed(round),
                payload,
                basis,
            }
        ),
        (any::<u64>(), 0u64..8, proptest::option::of(arb_payload()), 0u64..100).prop_map(
            |(request, id, payload, basis)| Message::Prepare {
                request: RequestId(request),
                round: PrepareRound::Incremental {
                    id: RoundId::proposer(basis, ReplicaId::new(id)),
                },
                payload,
                basis,
            }
        ),
        (any::<u64>(), arb_round(), arb_payload(), 0u64..100, 0u64..100).prop_map(
            |(request, round, state, reveal, basis)| Message::PrepareAck {
                request: RequestId(request),
                round,
                state,
                reveal,
                basis,
            }
        ),
        (any::<u64>(), arb_round(), arb_payload(), 0u64..100).prop_map(
            |(request, round, payload, basis)| Message::Vote {
                request: RequestId(request),
                round,
                payload,
                basis,
            }
        ),
    ]
}

fn arb_shard_message() -> impl Strategy<Value = ShardMessage<Kv>> {
    prop_oneof![
        (0u64..10, 1u32..16, 0u32..16, arb_message()).prop_map(
            |(epoch, shards, shard, message)| ShardMessage::Protocol {
                epoch,
                shards,
                shard: ShardId(shard % shards),
                message,
            }
        ),
        Just(ShardMessage::PlanRequest),
    ]
}

fn arb_envelope() -> impl Strategy<Value = Envelope<Kv>> {
    (0u64..8, 0u64..8, arb_message()).prop_map(|(from, to, message)| Envelope {
        from: ReplicaId::new(from),
        to: ReplicaId::new(to),
        message,
    })
}

fn arb_shard_envelope() -> impl Strategy<Value = ShardEnvelope<Kv>> {
    (0u64..8, 0u64..8, arb_shard_message()).prop_map(|(from, to, message)| ShardEnvelope {
        from: ReplicaId::new(from),
        to: ReplicaId::new(to),
        message,
    })
}

/// Both decode entry points, fed the same complete encoding, produce the
/// original value; fed the same truncated prefix, they agree byte for byte on
/// whether it decodes and on what it decodes to.
fn assert_equivalent<T>(value: &T, encoded: &[u8])
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let frame = Bytes::from(encoded.to_vec());
    let from_slice: T = wire::from_slice(encoded).expect("from_slice decodes its own encoding");
    let from_bytes: T = wire::from_bytes(&frame).expect("from_bytes decodes its own encoding");
    assert_eq!(&from_slice, value);
    assert_eq!(&from_bytes, value);

    for cut in 0..encoded.len() {
        let prefix = &encoded[..cut];
        let prefix_bytes = frame.slice(0..cut);
        let owned: Result<T, _> = wire::from_slice(prefix);
        let borrowed: Result<T, _> = wire::from_bytes(&prefix_bytes);
        match (owned, borrowed) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "prefix of {cut} bytes decodes differently"),
            (Err(_), Err(_)) => {}
            (owned, borrowed) => panic!(
                "prefix of {cut}/{} bytes: from_slice {:?} but from_bytes {:?}",
                encoded.len(),
                owned.map(|_| "Ok"),
                borrowed.map(|_| "Ok"),
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn envelope_owned_and_borrowed_decode_agree(envelope in arb_envelope()) {
        let encoded = wire::to_vec(&envelope).expect("encode");
        assert_equivalent(&envelope, &encoded);
    }

    #[test]
    fn shard_envelope_owned_and_borrowed_decode_agree(envelope in arb_shard_envelope()) {
        let encoded = wire::to_vec(&envelope).expect("encode");
        assert_equivalent(&envelope, &encoded);
    }

    /// A `Bytes` frame view handed out by the decoder remains valid — same
    /// bytes, same decoded value — after the decoder (and the read buffer it
    /// owns) is dropped.
    #[test]
    fn frame_view_outlives_its_decoder(envelope in arb_shard_envelope()) {
        let encoded = wire::to_vec(&envelope).expect("encode");
        let mut encoder = FrameEncoder::new();
        encoder.encode(&envelope).expect("frame");
        let wire_bytes = encoder.take();

        let view = {
            let mut decoder = FrameDecoder::default();
            let buf = decoder.read_buf(wire_bytes.len());
            buf[..wire_bytes.len()].copy_from_slice(&wire_bytes);
            decoder.commit(wire_bytes.len());
            decoder.decode_next_view().expect("well-formed").expect("complete")
            // decoder dropped here; `view` keeps the backing buffer alive
        };

        prop_assert_eq!(&view[..], &encoded[..]);
        let decoded: ShardEnvelope<Kv> = wire::from_bytes(&view).expect("decode view");
        prop_assert_eq!(decoded, envelope);
    }
}
