//! Property-based safety tests of the replication protocol.
//!
//! The paper proves five conditions (§3.1/§3.3): Validity, Stability, Consistency,
//! Update Stability, and Update Visibility. These tests drive small clusters through
//! randomly interleaved, randomly delayed (and optionally duplicated) message
//! schedules — the same idea as the protocol scheduler used for the Erlang
//! implementation — and assert the conditions on every learned state.

use crdt::{CounterQuery, CounterUpdate, GCounter, Lattice, ReplicaId};
use crdt_paxos_core::{ClientId, Command, Envelope, ProtocolConfig, Replica, ResponseBody};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

type Counter = GCounter;

/// One client command injected at a particular replica at a particular step.
#[derive(Debug, Clone)]
enum Op {
    Update { replica: usize, amount: u64 },
    Query { replica: usize },
}

fn op_strategy(replicas: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..replicas, 1u64..4).prop_map(|(replica, amount)| Op::Update { replica, amount }),
        (0..replicas).prop_map(|replica| Op::Query { replica }),
    ]
}

struct Harness {
    replicas: Vec<Replica<Counter>>,
    /// Messages currently "in the network".
    network: Vec<Envelope<Counter>>,
    rng: StdRng,
    duplicate_probability: f64,
}

struct QueryRecord {
    replica: usize,
    /// Value returned to the client.
    value: i64,
    /// The order in which the query completed (for Stability checks).
    completion_index: usize,
}

impl Harness {
    fn new(n: usize, seed: u64, config: ProtocolConfig, duplicate_probability: f64) -> Self {
        let ids: Vec<ReplicaId> = (0..n as u64).map(ReplicaId::new).collect();
        let replicas = ids
            .iter()
            .map(|&id| Replica::new(id, ids.clone(), Counter::default(), config.clone()))
            .collect();
        Harness {
            replicas,
            network: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            duplicate_probability,
        }
    }

    fn collect_outgoing(&mut self) {
        for replica in &mut self.replicas {
            for envelope in replica.take_outbox() {
                if self.rng.gen_bool(self.duplicate_probability) {
                    self.network.push(envelope.clone());
                }
                self.network.push(envelope);
            }
        }
    }

    /// Delivers one randomly chosen in-flight message.
    fn deliver_one(&mut self) -> bool {
        self.collect_outgoing();
        if self.network.is_empty() {
            return false;
        }
        let index = self.rng.gen_range(0..self.network.len());
        let envelope = self.network.swap_remove(index);
        let target = self
            .replicas
            .iter_mut()
            .find(|r| r.id() == envelope.to)
            .expect("message addressed to known replica");
        target.handle_message(envelope.from, envelope.message);
        true
    }

    fn run_until_quiescent(&mut self) {
        while self.deliver_one() {}
        // Allow retransmissions to fire in case duplicates confused an instance.
        for now in [200u64, 400, 600] {
            for replica in &mut self.replicas {
                replica.tick(now);
            }
            while self.deliver_one() {}
        }
    }
}

/// Runs a random schedule and returns (total updates applied, completed query records).
fn run_schedule(
    ops: &[Op],
    seed: u64,
    config: ProtocolConfig,
    duplicate_probability: f64,
) -> (u64, Vec<QueryRecord>) {
    let n = 3;
    let mut harness = Harness::new(n, seed, config, duplicate_probability);
    let mut total_increment = 0u64;
    let mut shuffled = ops.to_vec();
    shuffled.shuffle(&mut harness.rng);

    // Inject every command, interleaving random message deliveries between them.
    for op in &shuffled {
        match op {
            Op::Update { replica, amount } => {
                total_increment += amount;
                harness.replicas[*replica]
                    .submit(ClientId(0), Command::Update(CounterUpdate::Increment(*amount)));
            }
            Op::Query { replica } => {
                harness.replicas[*replica].submit(ClientId(1), Command::Query(CounterQuery::Value));
            }
        }
        let deliveries = harness.rng.gen_range(0..4);
        for _ in 0..deliveries {
            if !harness.deliver_one() {
                break;
            }
        }
    }
    harness.run_until_quiescent();

    let mut records = Vec::new();
    let mut completion_index = 0usize;
    for (replica_index, replica) in harness.replicas.iter_mut().enumerate() {
        for response in replica.take_responses() {
            if let ResponseBody::QueryDone(value) = response.body {
                records.push(QueryRecord { replica: replica_index, value, completion_index });
                completion_index += 1;
            }
        }
    }

    // Validity of the final acceptor states: every replica's payload is built only
    // from submitted updates, so its value never exceeds the total submitted.
    for replica in &harness.replicas {
        assert!(replica.local_state().value() <= total_increment);
    }

    (total_increment, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Validity: any learned value corresponds to a subset of the submitted updates
    /// (never more than the total submitted, never negative).
    #[test]
    fn learned_values_are_valid(
        ops in proptest::collection::vec(op_strategy(3), 1..30),
        seed in any::<u64>(),
    ) {
        let (total, records) = run_schedule(&ops, seed, ProtocolConfig::default(), 0.0);
        for record in &records {
            prop_assert!(record.value >= 0);
            prop_assert!(record.value as u64 <= total,
                "learned {} but only {} was submitted", record.value, total);
        }
    }

    /// GLA-Stability (§3.4): with the flag enabled, the states learned at the same
    /// proposer increase monotonically in completion order, even for concurrent
    /// queries whose replies arrive out of order. (Without the flag the paper only
    /// guarantees Stability for *subsequent* queries; the simulator-level
    /// linearizability tests in the `cluster` crate cover that case.)
    #[test]
    fn gla_stability_makes_per_proposer_reads_monotone(
        ops in proptest::collection::vec(op_strategy(3), 1..30),
        seed in any::<u64>(),
    ) {
        let config = ProtocolConfig::default().with_gla_stability();
        let (_, mut records) = run_schedule(&ops, seed, config, 0.0);
        records.sort_by_key(|r| r.completion_index);
        for replica in 0..3 {
            let mut last = i64::MIN;
            for record in records.iter().filter(|r| r.replica == replica) {
                prop_assert!(record.value >= last,
                    "replica {replica} observed {} after {}", record.value, last);
                last = record.value;
            }
        }
    }

    /// Message duplication must not violate validity (merges and joins are idempotent).
    #[test]
    fn duplicated_messages_do_not_break_safety(
        ops in proptest::collection::vec(op_strategy(3), 1..20),
        seed in any::<u64>(),
    ) {
        let (total, records) = run_schedule(&ops, seed, ProtocolConfig::default(), 0.3);
        for record in &records {
            prop_assert!(record.value as u64 <= total);
        }
    }

    /// The batched configuration obeys the same safety conditions.
    #[test]
    fn batching_preserves_safety(
        ops in proptest::collection::vec(op_strategy(3), 1..24),
        seed in any::<u64>(),
    ) {
        let (total, records) = run_schedule(&ops, seed, ProtocolConfig::batched(), 0.0);
        for record in &records {
            prop_assert!(record.value as u64 <= total);
        }
    }

    /// Eventual liveness (§3.5): once updates stop, every submitted query eventually
    /// completes (our harness keeps delivering messages until quiescence, so all
    /// queries must have completed by then).
    #[test]
    fn all_queries_eventually_complete(
        ops in proptest::collection::vec(op_strategy(3), 1..30),
        seed in any::<u64>(),
    ) {
        let queries_submitted = ops.iter().filter(|op| matches!(op, Op::Query { .. })).count();
        let (_, records) = run_schedule(&ops, seed, ProtocolConfig::default(), 0.0);
        prop_assert_eq!(records.len(), queries_submitted);
    }

    /// Validity holds unchanged when state-bearing messages carry deltas.
    #[test]
    fn delta_payloads_preserve_validity(
        ops in proptest::collection::vec(op_strategy(3), 1..30),
        seed in any::<u64>(),
    ) {
        let config = ProtocolConfig::default().with_delta_payloads();
        let (total, records) = run_schedule(&ops, seed, config, 0.0);
        for record in &records {
            prop_assert!(record.value >= 0);
            prop_assert!(record.value as u64 <= total);
        }
    }

    /// Joins are idempotent, so duplicated delta messages are as harmless as
    /// duplicated full-state messages.
    #[test]
    fn duplicated_delta_messages_do_not_break_safety(
        ops in proptest::collection::vec(op_strategy(3), 1..20),
        seed in any::<u64>(),
    ) {
        let config = ProtocolConfig::default().with_delta_payloads();
        let (total, records) = run_schedule(&ops, seed, config, 0.3);
        for record in &records {
            prop_assert!(record.value as u64 <= total);
        }
    }

    /// The payload representation is invisible to clients: under the *same* random
    /// schedule, DeltaWhenPossible mode returns exactly the values Full mode does
    /// (the harness's RNG is consumed identically because the message flow is
    /// identical — only the payload encoding differs).
    #[test]
    fn delta_mode_returns_the_same_values_as_full_mode(
        ops in proptest::collection::vec(op_strategy(3), 1..30),
        seed in any::<u64>(),
    ) {
        let (full_total, full_records) =
            run_schedule(&ops, seed, ProtocolConfig::default(), 0.0);
        let (delta_total, delta_records) =
            run_schedule(&ops, seed, ProtocolConfig::default().with_delta_payloads(), 0.0);
        prop_assert_eq!(full_total, delta_total);
        prop_assert_eq!(full_records.len(), delta_records.len());
        for (full, delta) in full_records.iter().zip(delta_records.iter()) {
            prop_assert_eq!(full.replica, delta.replica);
            prop_assert_eq!(full.value, delta.value);
            prop_assert_eq!(full.completion_index, delta.completion_index);
        }
    }
}

/// Update Visibility (Theorem 3.10) exercised deterministically across every pair of
/// (updating replica, querying replica).
#[test]
fn update_visibility_holds_for_every_replica_pair() {
    for updater in 0..3usize {
        for reader in 0..3usize {
            let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
            let mut replicas: Vec<Replica<Counter>> = ids
                .iter()
                .map(|&id| {
                    Replica::new(id, ids.clone(), Counter::default(), ProtocolConfig::default())
                })
                .collect();

            replicas[updater].submit(ClientId(0), Command::Update(CounterUpdate::Increment(7)));
            deliver_all(&mut replicas);
            assert!(matches!(replicas[updater].take_responses()[0].body, ResponseBody::UpdateDone));

            replicas[reader].submit(ClientId(1), Command::Query(CounterQuery::Value));
            deliver_all(&mut replicas);
            let responses = replicas[reader].take_responses();
            assert_eq!(
                responses[0].body,
                ResponseBody::QueryDone(7),
                "update at {updater} not visible to query at {reader}"
            );
        }
    }
}

/// Consistency (Theorem 3.8): states learned by concurrent queries at different
/// replicas are comparable — exercised by checking that two interleaved counters read
/// values that are consistent with a single linearization point.
#[test]
fn concurrent_queries_learn_comparable_states() {
    let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
    let mut replicas: Vec<Replica<Counter>> = ids
        .iter()
        .map(|&id| Replica::new(id, ids.clone(), Counter::default(), ProtocolConfig::default()))
        .collect();

    // Start an update whose MERGE only reaches replica 1.
    replicas[0].submit(ClientId(0), Command::Update(CounterUpdate::Increment(1)));
    let merges = replicas[0].take_outbox();
    for env in merges {
        if env.to == ReplicaId::new(1) {
            replicas[1].handle_message(env.from, env.message);
        }
    }
    replicas[1].take_outbox();

    // Two concurrent queries at replicas 1 and 2.
    replicas[1].submit(ClientId(1), Command::Query(CounterQuery::Value));
    replicas[2].submit(ClientId(2), Command::Query(CounterQuery::Value));
    deliver_all(&mut replicas);

    let v1 = query_value(&mut replicas[1]);
    let v2 = query_value(&mut replicas[2]);
    // Both learned states are elements of the chain 0 ⊑ 1, hence comparable.
    assert!(v1 <= 1 && v2 <= 1);

    // After the system quiesces, the final acceptor states are all comparable with
    // both learned states (they only grew).
    for replica in &replicas {
        assert!(replica.local_state().value() >= v1.max(v2) as u64 || v1.max(v2) == 0);
    }
}

fn query_value(replica: &mut Replica<Counter>) -> i64 {
    replica
        .take_responses()
        .into_iter()
        .find_map(|response| match response.body {
            ResponseBody::QueryDone(value) => Some(value),
            _ => None,
        })
        .expect("query completed")
}

fn deliver_all(replicas: &mut [Replica<Counter>]) {
    loop {
        let mut envelopes = Vec::new();
        for replica in replicas.iter_mut() {
            envelopes.extend(replica.take_outbox());
        }
        if envelopes.is_empty() {
            break;
        }
        for env in envelopes {
            let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
            replicas[index].handle_message(env.from, env.message);
        }
    }
}

/// Update Stability (Theorem 3.9): if update u1 completes before u2 is submitted, any
/// learned state including u2 also includes u1. On a counter this means a learned
/// value that reflects the second update also reflects the first.
#[test]
fn update_stability_orders_sequential_updates() {
    let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
    let mut replicas: Vec<Replica<Counter>> = ids
        .iter()
        .map(|&id| Replica::new(id, ids.clone(), Counter::default(), ProtocolConfig::default()))
        .collect();

    // u1: +1 at replica 0, runs to completion.
    replicas[0].submit(ClientId(0), Command::Update(CounterUpdate::Increment(1)));
    deliver_all(&mut replicas);
    replicas[0].take_responses();

    // u2: +10 at replica 1, runs to completion.
    replicas[1].submit(ClientId(1), Command::Update(CounterUpdate::Increment(10)));
    deliver_all(&mut replicas);
    replicas[1].take_responses();

    // Any learned state that includes u2 (value >= 10) must also include u1 (>= 11).
    replicas[2].submit(ClientId(2), Command::Query(CounterQuery::Value));
    deliver_all(&mut replicas);
    let value = query_value(&mut replicas[2]);
    assert_eq!(value, 11);

    // The acceptors' final payloads also include both updates.
    for replica in &replicas {
        let state = replica.local_state();
        let mut expected = Counter::default();
        expected.increment(ReplicaId::new(0), 1);
        assert!(expected.leq(state));
    }
}
