//! Integration tests for delta payloads: byte reduction on the wire and behavioural
//! equivalence with the paper-faithful full-state mode.
//!
//! The headline scenario mirrors the `wire_codec` bench's 64-slot case: a counter
//! that has accumulated contributions from 64 replicas (the worst case the ISSUE and
//! ROADMAP call out). In `DeltaWhenPossible` mode every MERGE after first contact
//! ships a single-slot delta, cutting total MERGE bytes by far more than 50 %.

use crdt::{CounterUpdate, GCounter, ReplicaId};
use crdt_paxos_core::{ClientId, Envelope, Message, Payload, ProtocolConfig, Replica};

/// A counter that already holds contributions from 64 replicas (e.g. a long-lived
/// wide deployment whose membership churned down to three).
fn wide_counter() -> GCounter {
    let mut state = GCounter::new();
    for replica in 0..64 {
        state.increment(ReplicaId::new(replica), replica * 1000 + 17);
    }
    state
}

fn cluster(config: ProtocolConfig) -> Vec<Replica<GCounter>> {
    let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
    ids.iter().map(|&id| Replica::new(id, ids.clone(), wide_counter(), config.clone())).collect()
}

/// Runs `updates` increments at replica 0, delivering all messages, and returns the
/// total encoded bytes of every MERGE that went over the (virtual) wire.
fn merge_bytes_for(config: ProtocolConfig, updates: u64) -> u64 {
    let mut replicas = cluster(config);
    let mut merge_bytes = 0u64;
    for step in 0..updates {
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(step + 1));
        loop {
            let mut envelopes: Vec<Envelope<GCounter>> = Vec::new();
            for replica in replicas.iter_mut() {
                envelopes.extend(replica.take_outbox());
            }
            if envelopes.is_empty() {
                break;
            }
            for env in envelopes {
                if matches!(env.message, Message::Merge { .. }) {
                    merge_bytes += wire::to_vec(&env.message).unwrap().len() as u64;
                }
                let index = env.to.as_u64() as usize;
                replicas[index].handle_message(env.from, env.message);
            }
        }
        replicas[0].take_responses();
    }
    merge_bytes
}

#[test]
fn delta_mode_halves_merge_bytes_on_the_64_slot_counter() {
    let updates = 10;
    let full = merge_bytes_for(ProtocolConfig::default(), updates);
    let delta = merge_bytes_for(ProtocolConfig::default().with_delta_payloads(), updates);
    assert!(
        (delta as f64) <= 0.5 * full as f64,
        "expected ≥ 50 % MERGE byte reduction, got full = {full} B, delta = {delta} B"
    );
}

#[test]
fn single_delta_merge_is_an_order_of_magnitude_smaller_than_full() {
    // The per-message version of the claim, directly comparable to the wire_codec
    // bench's 64-slot encode case.
    let mut state = wide_counter();
    let known = state.clone();
    state.increment(ReplicaId::new(0), 1);

    let full: Message<GCounter> = Message::Merge {
        request: crdt_paxos_core::RequestId(1),
        payload: Payload::Full(state.clone()),
    };
    let delta: Message<GCounter> = Message::Merge {
        request: crdt_paxos_core::RequestId(1),
        payload: Payload::Delta(crdt::DeltaCrdt::delta_since(&state, &known)),
    };
    let full_bytes = wire::to_vec(&full).unwrap().len();
    let delta_bytes = wire::to_vec(&delta).unwrap().len();
    assert!(delta_bytes * 10 <= full_bytes, "full = {full_bytes} B, delta = {delta_bytes} B");
}

/// Runs `queries` quiet reads at replica 0 (after one warm-up update + read that
/// establishes peer knowledge and basis snapshots), returning the total encoded
/// bytes of every ACK reply on the wire.
fn ack_bytes_for(config: ProtocolConfig, queries: u64) -> u64 {
    let mut replicas = cluster(config);
    let mut ack_bytes = 0u64;
    let mut measuring = false;
    for step in 0..queries + 2 {
        if step == 0 {
            replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        } else {
            replicas[0].submit_query(ClientId(0), crdt::CounterQuery::Value);
        }
        loop {
            let mut envelopes: Vec<Envelope<GCounter>> = Vec::new();
            for replica in replicas.iter_mut() {
                envelopes.extend(replica.take_outbox());
            }
            if envelopes.is_empty() {
                break;
            }
            for env in envelopes {
                if measuring && matches!(env.message, Message::PrepareAck { .. }) {
                    ack_bytes += wire::to_vec(&env.message).unwrap().len() as u64;
                }
                let index = env.to.as_u64() as usize;
                replicas[index].handle_message(env.from, env.message);
            }
        }
        replicas[0].take_responses();
        // The warm-up update + first read prime `peer_known` and the reveal/basis
        // handshake; measure from the second read on (the steady state).
        measuring = step >= 1;
    }
    ack_bytes
}

#[test]
fn delta_mode_halves_ack_bytes_on_the_64_slot_counter() {
    // The ROADMAP follow-up this covers: after delta-encoding MERGE/PREPARE/VOTE,
    // ACK/NACK replies dominated bytes-on-the-wire. With the reply handshake, a
    // quiet read's ACK is an empty delta instead of the full 64-slot state.
    let queries = 10;
    let full = ack_bytes_for(ProtocolConfig::default(), queries);
    let delta = ack_bytes_for(ProtocolConfig::default().with_delta_payloads(), queries);
    assert!(
        (delta as f64) <= 0.5 * full as f64,
        "expected ≥ 50 % ACK byte reduction, got full = {full} B, delta = {delta} B"
    );
}

#[test]
fn delta_and_full_mode_acceptors_converge_to_identical_states() {
    let updates = 7;
    let mut full = cluster(ProtocolConfig::default());
    let mut delta = cluster(ProtocolConfig::default().with_delta_payloads());
    for replicas in [&mut full, &mut delta] {
        for step in 0..updates {
            let writer = (step % 3) as usize;
            replicas[writer].submit_update(ClientId(0), CounterUpdate::Increment(1));
            loop {
                let mut envelopes: Vec<Envelope<GCounter>> = Vec::new();
                for replica in replicas.iter_mut() {
                    envelopes.extend(replica.take_outbox());
                }
                if envelopes.is_empty() {
                    break;
                }
                for env in envelopes {
                    let index = env.to.as_u64() as usize;
                    replicas[index].handle_message(env.from, env.message);
                }
            }
        }
    }
    for index in 0..3 {
        assert_eq!(full[index].local_state(), delta[index].local_state());
        assert_eq!(full[index].local_state().value(), wide_counter().value() + updates);
    }
}
