//! Dynamic resharding: epoch-stamped rebalance plans and lattice-join state handoff.
//!
//! The paper's log-less replication makes resharding unusually cheap: a shard's
//! entire replicated value is one lattice element, so *moving* a key range is one
//! join at the destination — there is no log to truncate, snapshot, or replay. This
//! module provides the agreement and bookkeeping half of that design; the routing
//! and traffic machinery lives in [`crate::ShardedReplica`].
//!
//! # How a rebalance runs
//!
//! 1. **Agree on a plan.** A coordinator replica commits a proposed shard count for
//!    the next epoch on a dedicated *control shard* — an ordinary protocol instance
//!    replicating [`ControlState`], a `LatticeMap<epoch, GSet<shard count>>`. The
//!    lattice resolves racing coordinators: concurrent proposals for the same epoch
//!    join into one set, and [`winning_shards`] picks the same winner everywhere. A
//!    linearizable read after the commit tells the coordinator the agreed
//!    [`RebalancePlan`], which it then gossips.
//! 2. **Install and hand off.** A replica installing a plan (from gossip or from an
//!    epoch bounce) grows its protocol-instance table, then **copies**: every key of
//!    every old shard that the new partitioner routes elsewhere has its sub-state
//!    joined into the destination instance's acceptor. Stale copies left behind at
//!    the source are harmless lower bounds — lattice join absorbs them if the key
//!    ever moves back — so nothing is deleted.
//! 3. **Fence and re-home.** From installation on, protocol messages stamped with
//!    an older epoch are answered with the plan instead of being processed (their
//!    data would bypass the copy), and messages from newer epochs are deferred until
//!    the plan arrives. In-flight commands are re-homed: already-applied updates
//!    re-replicate via a *resync* instance on the key's new owner, unapplied and
//!    read commands are simply resubmitted there.
//!
//! Per-key linearizability across the transition follows from quorum intersection:
//! an update committed at epoch `e` was joined by a quorum of source-shard acceptors
//! *before* each of them fenced, so the same quorum's handoff copies carry it into
//! the destination shard, and any epoch-`e+1` read quorum intersects it there.

use crdt::{GSet, LatticeMap};
use quorum::{HashPartitioner, RangePartitioner};
use serde::{Deserialize, Serialize};

/// The agreed outcome of one rebalance: the keyspace of `epoch` is hash-partitioned
/// over `shards` protocol instances.
///
/// A plan is self-contained (it names its epoch and the full new assignment), so a
/// single plan message suffices to bring an arbitrarily stale replica to the current
/// partitioning — there is no need to replay intermediate epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalancePlan {
    /// The partitioning generation this plan creates.
    pub epoch: u64,
    /// Number of hash-partitioned shards at that epoch.
    pub shards: u32,
}

/// The lattice replicated by the control shard: proposed shard counts per epoch.
///
/// Racing coordinators may commit different proposals for the same epoch; the set
/// join keeps all of them and [`winning_shards`] resolves the race deterministically,
/// so every replica that reads the control shard derives the same plan.
pub type ControlState = LatticeMap<u64, GSet<u32>>;

/// Deterministic winner among racing shard-count proposals for one epoch: the
/// largest count (growth is preferred over shrinkage when operators disagree).
pub fn winning_shards<'a, I: IntoIterator<Item = &'a u32>>(proposals: I) -> Option<u32> {
    proposals.into_iter().copied().max()
}

/// Partitioner families that can realize a [`RebalancePlan`].
///
/// The rebalance subsystem is generic over the routing function, but a plan must be
/// turned back into a concrete partitioner at installation time. Families that
/// cannot express hash plans return `None` and ignore rebalance traffic (range
/// resharding — shipping split points instead of a shard count — is a recorded
/// follow-up).
pub trait PlanPartitioner: Sized {
    /// The partitioner realizing `plan`, or `None` if this family cannot express it.
    fn from_plan(plan: &RebalancePlan) -> Option<Self>;
}

impl PlanPartitioner for HashPartitioner {
    fn from_plan(plan: &RebalancePlan) -> Option<Self> {
        (plan.shards > 0).then(|| HashPartitioner::new(plan.shards))
    }
}

impl<K: Ord> PlanPartitioner for RangePartitioner<K> {
    fn from_plan(_plan: &RebalancePlan) -> Option<Self> {
        None
    }
}

/// Counters describing a replica's view of past and ongoing rebalances
/// (observability; see [`crate::ShardedReplica::rebalance_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Plans installed (epoch advances) at this replica.
    pub plans_installed: u64,
    /// Keys whose sub-state was copied to a different shard during installs.
    pub keys_moved: u64,
    /// Old-epoch protocol messages answered with the current plan instead of being
    /// processed (the epoch fence at work).
    pub epoch_bounces: u64,
    /// Future-epoch protocol messages buffered until their plan was installed.
    pub messages_deferred: u64,
    /// In-flight commands re-homed onto their new owner shard during installs.
    pub commands_rehomed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorum::Partitioner;

    #[test]
    fn winning_shards_is_the_maximum_proposal() {
        assert_eq!(winning_shards([&4u32, &8, &2]), Some(8));
        assert_eq!(winning_shards([] as [&u32; 0]), None);
    }

    #[test]
    fn hash_plans_realize_and_zero_shard_plans_do_not() {
        let plan = RebalancePlan { epoch: 3, shards: 8 };
        let partitioner = HashPartitioner::from_plan(&plan).expect("valid plan");
        assert_eq!(<HashPartitioner as Partitioner<u64>>::shards(&partitioner), 8);
        assert!(HashPartitioner::from_plan(&RebalancePlan { epoch: 3, shards: 0 }).is_none());
    }

    #[test]
    fn range_partitioners_ignore_hash_plans() {
        let plan = RebalancePlan { epoch: 1, shards: 4 };
        assert!(RangePartitioner::<u64>::from_plan(&plan).is_none());
    }

    #[test]
    fn plans_survive_the_wire_format() {
        let plan = RebalancePlan { epoch: 7, shards: 16 };
        let bytes = wire::to_vec(&plan).unwrap();
        let decoded: RebalancePlan = wire::from_slice(&bytes).unwrap();
        assert_eq!(decoded, plan);
    }
}
