//! The acceptor role: the replicated storage of the CRDT (Algorithm 2, right column).
//!
//! An acceptor holds exactly two pieces of state: the current CRDT payload `s` and the
//! highest round `r` it has observed. There is no command log; updates and merges
//! modify the payload *in place* by monotone growth.
//!
//! The message-facing handlers operate on [`Payload`]s, so an acceptor absorbs full
//! states and deltas uniformly; the `*_local` variants are the allocation-free entry
//! points the co-located proposer uses for its own acceptor.

use crdt::{Crdt, DeltaCrdt, ReplicaId};

use crate::msg::Payload;
use crate::round::{PrepareRound, Round, RoundId};

/// Outcome of handling a `PREPARE` or `VOTE` message.
///
/// Deliberately carries only the round, not the payload: the caller that needs
/// the post-decision state borrows it via [`Acceptor::state`] and clones only
/// on the paths that actually ship it (a `VOTED` reply, for instance, carries
/// no state at all — §3.6 — so its hot path is clone-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptOutcome {
    /// The request was accepted; reply with `ACK`/`VOTED`.
    Ack {
        /// The acceptor's round after processing the request.
        round: Round,
    },
    /// The request was rejected; reply with `NACK` carrying the current round
    /// (and, on the wire, the payload the caller borrows separately) so the
    /// proposer can retry with more information.
    Nack {
        /// The acceptor's current round.
        round: Round,
    },
}

/// The acceptor role of one replica.
#[derive(Debug, Clone)]
pub struct Acceptor<C> {
    replica: ReplicaId,
    state: C,
    round: Round,
}

impl<C: Crdt + DeltaCrdt> Acceptor<C> {
    /// Creates an acceptor with the initial payload `s0` and round `(0, ⊥)`
    /// (paper lines 25–27).
    pub fn new(replica: ReplicaId, initial: C) -> Self {
        Acceptor { replica, state: initial, round: Round::ZERO }
    }

    /// The replica this acceptor belongs to.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Read access to the current payload state.
    pub fn state(&self) -> &C {
        &self.state
    }

    /// The highest round observed so far.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Applies an update function locally (paper lines 28–31, `apply_update`).
    ///
    /// The round id is set to the write marker, invalidating any in-flight
    /// proposal that prepared against the previous state. The caller reads the
    /// grown payload through [`Acceptor::state`] (and clones it once per
    /// protocol instance, not once per applied update, when broadcasting
    /// `MERGE` messages).
    pub fn apply_update(&mut self, update: &C::Update) {
        self.state.apply(self.replica, update);
        self.round = self.round.with_write_marker();
    }

    /// Handles a `MERGE` message (paper lines 32–35): joins the received payload
    /// (full state or delta) and installs the write marker. The caller replies with
    /// `MERGED`.
    pub fn handle_merge(&mut self, payload: &Payload<C>) {
        payload.join_into(&mut self.state);
        self.round = self.round.with_write_marker();
    }

    /// Joins `state` directly into the payload and installs the write marker,
    /// exactly as a `MERGE` carrying that state would.
    ///
    /// This is the lattice-join half of a state handoff: during resharding the
    /// sharded engine grafts a moved key range into the destination instance by
    /// absorbing the source's sub-state. The write marker invalidates in-flight
    /// proposals prepared against the pre-handoff state, like any other merge.
    pub fn absorb(&mut self, state: &C) {
        self.state.join(state);
        self.round = self.round.with_write_marker();
    }

    /// Handles a `PREPARE` message (paper lines 36–42).
    ///
    /// The optional payload is joined into the local state first. An incremental
    /// prepare is always accepted (the local round number strictly increases); a fixed
    /// prepare is accepted only if its round number is strictly larger than the
    /// current one, otherwise a `NACK` outcome is returned.
    pub fn handle_prepare(
        &mut self,
        round: PrepareRound,
        payload: Option<&Payload<C>>,
    ) -> AcceptOutcome {
        if let Some(payload) = payload {
            payload.join_into(&mut self.state);
        }
        self.decide_prepare(round)
    }

    /// [`Acceptor::handle_prepare`] for the proposer's own acceptor, which holds the
    /// payload state by reference and never wraps it in a [`Payload`].
    pub fn prepare_local(&mut self, round: PrepareRound, state: Option<&C>) -> AcceptOutcome {
        if let Some(state) = state {
            self.state.join(state);
        }
        self.decide_prepare(round)
    }

    fn decide_prepare(&mut self, round: PrepareRound) -> AcceptOutcome {
        let requested = match round {
            PrepareRound::Incremental { id } => Round::new(self.round.number + 1, id),
            PrepareRound::Fixed(round) => round,
        };
        if requested.number > self.round.number {
            self.round = requested;
            AcceptOutcome::Ack { round: self.round }
        } else {
            AcceptOutcome::Nack { round: self.round }
        }
    }

    /// Handles a `VOTE` message (paper lines 43–47).
    ///
    /// The proposed payload is always joined into the local state (line 44). The vote
    /// succeeds only if the acceptor's round still equals the proposal's round, i.e.
    /// no concurrent update, merge, or competing prepare has intervened since the
    /// first phase (invariant I4).
    pub fn handle_vote(&mut self, round: Round, payload: &Payload<C>) -> AcceptOutcome {
        payload.join_into(&mut self.state);
        self.decide_vote(round)
    }

    /// [`Acceptor::handle_vote`] for the proposer's own acceptor (no [`Payload`]
    /// wrapping, no clone).
    pub fn vote_local(&mut self, round: Round, state: &C) -> AcceptOutcome {
        self.state.join(state);
        self.decide_vote(round)
    }

    fn decide_vote(&mut self, round: Round) -> AcceptOutcome {
        if round == self.round {
            AcceptOutcome::Ack { round: self.round }
        } else {
            AcceptOutcome::Nack { round: self.round }
        }
    }

    /// Returns `true` if the acceptor's round carries the write marker, i.e. the last
    /// payload modification came from an update or merge.
    pub fn has_pending_write_marker(&self) -> bool {
        self.round.id == RoundId::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt::{CounterUpdate, GCounter, Lattice};

    fn acceptor() -> Acceptor<GCounter> {
        Acceptor::new(ReplicaId::new(0), GCounter::new())
    }

    fn proposer_id(seq: u64) -> RoundId {
        RoundId::proposer(seq, ReplicaId::new(9))
    }

    #[test]
    fn initial_state_is_bottom_round_and_s0() {
        let acceptor = acceptor();
        assert_eq!(acceptor.round(), Round::ZERO);
        assert_eq!(acceptor.state().value(), 0);
        assert_eq!(acceptor.replica(), ReplicaId::new(0));
        assert!(!acceptor.has_pending_write_marker());
    }

    #[test]
    fn apply_update_grows_state_and_marks_write() {
        let mut acceptor = acceptor();
        acceptor.apply_update(&CounterUpdate::Increment(3));
        assert_eq!(acceptor.state().value(), 3);
        assert!(acceptor.has_pending_write_marker());
        assert_eq!(acceptor.round().number, 0, "updates do not change the round number");
    }

    #[test]
    fn merge_joins_state_and_marks_write() {
        let mut acceptor = acceptor();
        let mut remote = GCounter::new();
        remote.increment(ReplicaId::new(1), 7);
        acceptor.handle_merge(&Payload::Full(remote.clone()));
        assert_eq!(acceptor.state().value(), 7);
        assert!(acceptor.has_pending_write_marker());
        // Merges are idempotent.
        acceptor.handle_merge(&Payload::Full(remote));
        assert_eq!(acceptor.state().value(), 7);
    }

    #[test]
    fn delta_merge_has_the_same_effect_as_a_full_merge() {
        let mut sender = GCounter::new();
        sender.increment(ReplicaId::new(1), 7);

        let mut by_full = acceptor();
        by_full.handle_merge(&Payload::Full(sender.clone()));

        // The acceptor's pre-state (s0) is trivially contained in the sender, so a
        // delta against s0 carries everything.
        let delta = sender.delta_since(&GCounter::new());
        let mut by_delta = acceptor();
        by_delta.handle_merge(&Payload::Delta(delta));

        assert_eq!(by_full.state(), by_delta.state());
        assert!(by_delta.has_pending_write_marker());
    }

    #[test]
    fn incremental_prepare_is_always_accepted_and_increments_round() {
        let mut acceptor = acceptor();
        match acceptor.handle_prepare(PrepareRound::Incremental { id: proposer_id(1) }, None) {
            AcceptOutcome::Ack { round } => {
                assert_eq!(round.number, 1);
                assert_eq!(round.id, proposer_id(1));
                assert_eq!(acceptor.state().value(), 0);
            }
            other => panic!("expected ack, got {other:?}"),
        }
        // A second incremental prepare keeps increasing the round number.
        match acceptor.handle_prepare(PrepareRound::Incremental { id: proposer_id(2) }, None) {
            AcceptOutcome::Ack { round, .. } => assert_eq!(round.number, 2),
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn fixed_prepare_requires_strictly_larger_round_number() {
        let mut acceptor = acceptor();
        let high = Round::new(5, proposer_id(1));
        assert!(matches!(
            acceptor.handle_prepare(PrepareRound::Fixed(high), None),
            AcceptOutcome::Ack { .. }
        ));
        // Same round number is rejected.
        let same = Round::new(5, proposer_id(2));
        assert!(matches!(
            acceptor.handle_prepare(PrepareRound::Fixed(same), None),
            AcceptOutcome::Nack { round, .. } if round == high
        ));
        // Smaller round number is rejected.
        let low = Round::new(3, proposer_id(3));
        assert!(matches!(
            acceptor.handle_prepare(PrepareRound::Fixed(low), None),
            AcceptOutcome::Nack { .. }
        ));
    }

    #[test]
    fn prepare_joins_the_included_payload() {
        let mut acceptor = acceptor();
        let mut payload = GCounter::new();
        payload.increment(ReplicaId::new(2), 4);
        assert!(matches!(
            acceptor.handle_prepare(
                PrepareRound::Incremental { id: proposer_id(1) },
                Some(&Payload::Full(payload)),
            ),
            AcceptOutcome::Ack { .. }
        ));
        assert_eq!(acceptor.state().value(), 4);
        // Joining a payload during prepare does NOT set the write marker.
        assert!(!acceptor.has_pending_write_marker());
    }

    #[test]
    fn local_variants_match_the_payload_handlers() {
        let mut payload = GCounter::new();
        payload.increment(ReplicaId::new(2), 4);

        let mut via_payload = acceptor();
        via_payload.handle_prepare(
            PrepareRound::Incremental { id: proposer_id(1) },
            Some(&Payload::Full(payload.clone())),
        );
        let mut via_local = acceptor();
        via_local.prepare_local(PrepareRound::Incremental { id: proposer_id(1) }, Some(&payload));
        assert_eq!(via_payload.state(), via_local.state());
        assert_eq!(via_payload.round(), via_local.round());

        let round = via_payload.round();
        via_payload.handle_vote(round, &Payload::Full(payload.clone()));
        via_local.vote_local(round, &payload);
        assert_eq!(via_payload.state(), via_local.state());
    }

    #[test]
    fn vote_succeeds_only_for_the_current_round() {
        let mut acceptor = acceptor();
        let outcome =
            acceptor.handle_prepare(PrepareRound::Incremental { id: proposer_id(1) }, None);
        let round = match outcome {
            AcceptOutcome::Ack { round, .. } => round,
            other => panic!("expected ack, got {other:?}"),
        };
        let mut proposed = GCounter::new();
        proposed.increment(ReplicaId::new(1), 1);
        assert!(matches!(
            acceptor.handle_vote(round, &Payload::Full(proposed)),
            AcceptOutcome::Ack { .. }
        ));
        assert_eq!(acceptor.state().value(), 1, "vote joins the proposed payload");
    }

    #[test]
    fn vote_is_rejected_after_a_concurrent_update() {
        let mut acceptor = acceptor();
        let round =
            match acceptor.handle_prepare(PrepareRound::Incremental { id: proposer_id(1) }, None) {
                AcceptOutcome::Ack { round, .. } => round,
                other => panic!("expected ack, got {other:?}"),
            };
        // An update arrives between the prepare and the vote.
        acceptor.apply_update(&CounterUpdate::Increment(1));
        let proposed = GCounter::new();
        match acceptor.handle_vote(round, &Payload::Full(proposed)) {
            AcceptOutcome::Nack { round: current } => {
                assert_eq!(current.id, RoundId::Write);
                assert_eq!(acceptor.state().value(), 1);
            }
            other => panic!("expected nack, got {other:?}"),
        }
    }

    #[test]
    fn vote_is_rejected_after_a_competing_prepare() {
        let mut acceptor = acceptor();
        let round =
            match acceptor.handle_prepare(PrepareRound::Incremental { id: proposer_id(1) }, None) {
                AcceptOutcome::Ack { round, .. } => round,
                other => panic!("expected ack, got {other:?}"),
            };
        // A competing proposer prepares with a higher round in between (invariant I4).
        acceptor.handle_prepare(PrepareRound::Incremental { id: proposer_id(2) }, None);
        assert!(matches!(
            acceptor.handle_vote(round, &Payload::Full(GCounter::new())),
            AcceptOutcome::Nack { .. }
        ));
    }

    #[test]
    fn vote_still_joins_payload_even_when_rejected() {
        // Lemma 3.4 (ii) requires acceptors to merge the proposed payload before
        // replying, and the pseudocode joins even when the round check then fails.
        let mut acceptor = acceptor();
        acceptor.apply_update(&CounterUpdate::Increment(1));
        let stale_round = Round::new(9, proposer_id(9));
        let mut proposed = GCounter::new();
        proposed.increment(ReplicaId::new(2), 5);
        assert!(matches!(
            acceptor.handle_vote(stale_round, &Payload::Full(proposed)),
            AcceptOutcome::Nack { .. }
        ));
        assert_eq!(acceptor.state().value(), 6);
    }

    #[test]
    fn payload_grows_monotonically_under_any_message_sequence() {
        // Lemma 3.2: the payload state of each acceptor increases monotonically.
        let mut acceptor = acceptor();
        let mut previous = acceptor.state().clone();
        let mut remote = GCounter::new();
        remote.increment(ReplicaId::new(1), 2);

        type Step = Box<dyn Fn(&mut Acceptor<GCounter>)>;
        let steps: Vec<Step> = vec![
            Box::new(|a| {
                a.apply_update(&CounterUpdate::Increment(1));
            }),
            Box::new({
                let remote = remote.clone();
                move |a| a.handle_merge(&Payload::Full(remote.clone()))
            }),
            Box::new(|a| {
                a.handle_prepare(PrepareRound::Incremental { id: proposer_id(3) }, None);
            }),
            Box::new({
                let remote = remote.clone();
                move |a| {
                    a.handle_vote(Round::new(42, proposer_id(4)), &Payload::Full(remote.clone()));
                }
            }),
        ];
        for step in steps {
            step(&mut acceptor);
            assert!(previous.leq(acceptor.state()), "payload must never shrink");
            previous = acceptor.state().clone();
        }
    }
}
