//! Recycled outbox batches: the free list behind the allocation-free reply
//! path.
//!
//! An [`crate::Envelope`] or [`crate::ShardEnvelope`] shell is three plain
//! words plus its payload — the heap cost of a drained outbox is the batch
//! vector the shells sit in, so that vector *is* the free list. The replica's
//! own outbox already recycles this way (`Replica::drain_outbox_into` and
//! `ShardCore::drain_outbox_into` move shells out with `Vec::append`, which
//! preserves the source's capacity, so steady-state rounds push replies into
//! resident storage). [`EnvelopePool`] extends the same discipline to callers
//! that cannot hold one drain buffer persistently — per-connection tasks,
//! simulator adapters, fan-out paths that drain several replicas per cycle:
//! check a warmed batch out, fill it via the `drain_outbox_into` family,
//! encode straight out of it, and give it back cleared.
//!
//! Steady state allocates zero per round: the shells live in recycled batch
//! capacity, replies without payloads (`MergeAck`, `VoteAck`) carry no heap at
//! all, and delta payloads rewrite resident lattice nodes. The `alloc_gate`
//! bench gates this end to end with a counting allocator.

/// A bounded free list of reusable batch buffers.
///
/// `T` is typically [`crate::ShardEnvelope`] (engine/transport plane) or
/// [`crate::Envelope`] (single-instance plane); the pool is generic because a
/// shell's storage — the vector — is what gets recycled, not the shell itself.
#[derive(Debug)]
pub struct EnvelopePool<T> {
    batches: Vec<Vec<T>>,
    /// Maximum number of idle batches retained by [`EnvelopePool::give_back`].
    retain: usize,
}

impl<T> Default for EnvelopePool<T> {
    fn default() -> Self {
        EnvelopePool::new(8)
    }
}

impl<T> EnvelopePool<T> {
    /// Creates a pool that retains at most `retain` idle batches.
    pub fn new(retain: usize) -> Self {
        EnvelopePool { batches: Vec::with_capacity(retain), retain }
    }

    /// Takes a recycled batch (empty, but with its warmed capacity) or a fresh
    /// one if the pool is dry.
    pub fn checkout(&mut self) -> Vec<T> {
        self.batches.pop().unwrap_or_default()
    }

    /// Returns a batch to the pool. Leftover shells are dropped here — a
    /// returned batch never leaks stale envelopes into its next checkout —
    /// and the buffer is discarded instead of retained once the pool is full.
    pub fn give_back(&mut self, mut batch: Vec<T>) {
        batch.clear();
        if self.batches.len() < self.retain && batch.capacity() > 0 {
            self.batches.push(batch);
        }
    }

    /// Number of idle batches currently retained.
    pub fn idle(&self) -> usize {
        self.batches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_capacity() {
        let mut pool: EnvelopePool<u64> = EnvelopePool::new(4);
        let mut batch = pool.checkout();
        batch.extend(0..100);
        let warmed = batch.capacity();
        let base = batch.as_ptr();
        pool.give_back(batch);

        let again = pool.checkout();
        assert!(again.is_empty(), "recycled batches come back empty");
        assert_eq!(again.capacity(), warmed);
        assert_eq!(again.as_ptr(), base, "same allocation, no copy");
    }

    #[test]
    fn give_back_clears_stale_entries() {
        let mut pool: EnvelopePool<&'static str> = EnvelopePool::default();
        let mut batch = pool.checkout();
        batch.push("stale");
        pool.give_back(batch);
        assert!(pool.checkout().is_empty());
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool: EnvelopePool<u8> = EnvelopePool::new(2);
        for _ in 0..5 {
            let mut batch = Vec::with_capacity(16);
            batch.push(1);
            pool.give_back(batch);
        }
        assert_eq!(pool.idle(), 2);
        // Unwarmed (zero-capacity) buffers are not worth retaining.
        pool.give_back(Vec::new());
        assert_eq!(pool.idle(), 2);
    }
}
