//! Protocol configuration.

use serde::{Deserialize, Serialize};

/// How state-bearing messages (`MERGE`, `PREPARE`, `VOTE`) carry their payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PayloadMode {
    /// Always ship the full CRDT state, exactly as in the paper (Algorithm 2).
    #[default]
    Full,
    /// Ship a [`crate::Payload::Delta`] when the proposer knows (from a previous
    /// `MERGED`/`ACK`/`NACK` of that peer) a state the receiver is guaranteed to
    /// contain; fall back to the full state on first contact, query retries, and
    /// retransmissions. Acceptors reply in kind: `ACK`s (and vote `NACK`s) are
    /// delta-encoded against the payload of the request they answer, so quiet reads
    /// ship near-empty replies. Cuts bytes-on-the-wire roughly by the ratio of
    /// changed to total state — on the 64-slot counter benchmark well over 50 %.
    DeltaWhenPossible,
}

/// Tunable knobs of the replication protocol.
///
/// The defaults correspond to the base protocol of §3.2 with the message-size
/// optimizations of §3.6 enabled and batching disabled ("CRDT Paxos" in the figures).
/// Enable [`ProtocolConfig::batching`] to obtain the "CRDT Paxos w/ batching"
/// configuration (5 ms batches in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Buffer client commands and execute them batch-wise (§3.6, "Batching").
    pub batching: bool,
    /// Batch flush interval in milliseconds (the paper uses 5 ms).
    pub batch_interval_ms: u64,
    /// Include the proposer's current payload in `PREPARE` messages to speed up
    /// convergence (§3.2). The initial state `s0` is never sent (§3.6).
    pub send_state_in_prepare: bool,
    /// Retry failed prepares with an incremental prepare (guarantees eventual
    /// liveness, §3.5). When `false`, retries use fixed prepares.
    pub retry_with_incremental_prepare: bool,
    /// Remember the largest learned state per proposer and never return anything
    /// smaller, providing GLA-Stability (§3.4).
    pub gla_stability: bool,
    /// Re-send the messages of a pending request if no quorum replied within this
    /// many milliseconds (covers message loss; the paper assumes fair-lossy links).
    pub retransmit_after_ms: u64,
    /// Upper bound on query retries before giving up and reporting a failure to the
    /// client (0 = retry forever). The paper's protocol retries indefinitely; the
    /// bound exists so misconfigured deployments fail loudly instead of spinning.
    pub max_query_retries: u32,
    /// Whether state-bearing messages may carry deltas instead of full states.
    /// Defaults to [`PayloadMode::Full`] (the paper-faithful wire format).
    pub payload_mode: PayloadMode,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            batching: false,
            batch_interval_ms: 5,
            send_state_in_prepare: true,
            retry_with_incremental_prepare: true,
            gla_stability: false,
            retransmit_after_ms: 100,
            max_query_retries: 0,
            payload_mode: PayloadMode::Full,
        }
    }
}

impl ProtocolConfig {
    /// The base protocol without batching ("CRDT Paxos").
    pub fn unbatched() -> Self {
        ProtocolConfig::default()
    }

    /// The batched variant with the paper's 5 ms batch interval
    /// ("CRDT Paxos w/ batching").
    pub fn batched() -> Self {
        ProtocolConfig { batching: true, ..ProtocolConfig::default() }
    }

    /// Sets the batch interval (implies batching).
    #[must_use]
    pub fn with_batch_interval_ms(mut self, interval: u64) -> Self {
        self.batching = true;
        self.batch_interval_ms = interval;
        self
    }

    /// Enables GLA-Stability (§3.4).
    #[must_use]
    pub fn with_gla_stability(mut self) -> Self {
        self.gla_stability = true;
        self
    }

    /// Enables delta payloads ([`PayloadMode::DeltaWhenPossible`]).
    #[must_use]
    pub fn with_delta_payloads(mut self) -> Self {
        self.payload_mode = PayloadMode::DeltaWhenPossible;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_base_protocol() {
        let config = ProtocolConfig::default();
        assert!(!config.batching);
        assert_eq!(config.batch_interval_ms, 5);
        assert!(config.send_state_in_prepare);
        assert!(config.retry_with_incremental_prepare);
        assert!(!config.gla_stability);
        assert_eq!(config.payload_mode, PayloadMode::Full, "paper ships full states");
    }

    #[test]
    fn delta_payloads_builder() {
        let config = ProtocolConfig::default().with_delta_payloads();
        assert_eq!(config.payload_mode, PayloadMode::DeltaWhenPossible);
    }

    #[test]
    fn batched_preset_enables_batching() {
        let config = ProtocolConfig::batched();
        assert!(config.batching);
        assert_eq!(config.batch_interval_ms, 5);
    }

    #[test]
    fn builder_helpers() {
        let config = ProtocolConfig::unbatched().with_batch_interval_ms(10).with_gla_stability();
        assert!(config.batching);
        assert_eq!(config.batch_interval_ms, 10);
        assert!(config.gla_stability);
    }
}
