//! The sans-IO driver surface shared by every protocol state machine in this
//! crate.
//!
//! [`Replica`], [`ShardedReplica`], and the per-shard [`ShardCore`] all follow
//! the same contract: they own no clocks, sockets, channels, or threads.
//! Whatever hosts them — the deterministic simulator in `cluster`, the
//! thread-per-shard executor in `engine`, or a hand-written test loop — feeds
//! them inbound messages and the current time, then drains the addressed
//! envelopes and client responses they produced. The [`Driver`] trait names
//! that contract so hosts can be written once, generically, and so the
//! simulator and the real-parallel engine provably drive the *same* cores.
//!
//! [`ShardCore`]: crate::ShardCore

use crdt::ReplicaId;

use crate::msg::ClientResponse;
use crate::replica::Replica;
use crate::shard::{ShardEnvelope, ShardMessage, ShardedReplica};
use crate::PlanPartitioner;
use crdt::{Crdt, DeltaCrdt, LatticeMap};
use quorum::Partitioner;
use std::fmt;

/// Everything one [`Driver::step`] produced: envelopes to forward to peers and
/// responses to deliver to clients.
#[derive(Debug)]
pub struct StepOutput<E, R> {
    /// Addressed messages for the host to put on the wire (or the in-memory
    /// mesh). Delivery may be delayed, reordered, or dropped — the protocol
    /// tolerates all three.
    pub outbox: Vec<E>,
    /// Completed client commands, in completion order.
    pub responses: Vec<R>,
}

/// A sans-IO protocol state machine: the host owns IO and time, the machine
/// owns the protocol.
///
/// The required methods are the primitive surface every implementation already
/// exposes (`handle_message` / `tick` / `take_outbox` / `take_responses`);
/// [`Driver::step`] composes them in the one order that is always correct —
/// deliver, advance time, drain.
pub trait Driver {
    /// What peers send to this machine.
    type Incoming;
    /// Addressed messages this machine emits for peers.
    type Outgoing;
    /// What this machine hands back to clients.
    type Response;

    /// Delivers one message from a peer.
    fn handle(&mut self, from: ReplicaId, message: Self::Incoming);

    /// Advances the machine's notion of time (batch flushes, retransmissions).
    /// `now_ms` is host time; the machine only requires it to be monotone.
    fn tick(&mut self, now_ms: u64);

    /// Drains the addressed messages produced since the last drain.
    fn drain_outbox(&mut self) -> Vec<Self::Outgoing>;

    /// Drains the client responses produced since the last drain.
    fn drain_responses(&mut self) -> Vec<Self::Response>;

    /// One full driver cycle: deliver `inbox`, advance time to `now_ms`, and
    /// drain everything produced. Hosts that do not need to interleave (the
    /// engine's workers, simple test loops) can treat this as the entire API.
    fn step<I>(&mut self, now_ms: u64, inbox: I) -> StepOutput<Self::Outgoing, Self::Response>
    where
        I: IntoIterator<Item = (ReplicaId, Self::Incoming)>,
    {
        for (from, message) in inbox {
            self.handle(from, message);
        }
        self.tick(now_ms);
        StepOutput { outbox: self.drain_outbox(), responses: self.drain_responses() }
    }
}

impl<C: Crdt + DeltaCrdt> Driver for Replica<C> {
    type Incoming = crate::Message<C>;
    type Outgoing = crate::Envelope<C>;
    type Response = ClientResponse<C>;

    fn handle(&mut self, from: ReplicaId, message: Self::Incoming) {
        self.handle_message(from, message);
    }

    fn tick(&mut self, now_ms: u64) {
        Replica::tick(self, now_ms);
    }

    fn drain_outbox(&mut self) -> Vec<Self::Outgoing> {
        self.take_outbox()
    }

    fn drain_responses(&mut self) -> Vec<Self::Response> {
        self.take_responses()
    }
}

impl<K, V, P> Driver for ShardedReplica<K, V, P>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
    P: Partitioner<K> + PlanPartitioner,
{
    type Incoming = ShardMessage<LatticeMap<K, V>>;
    type Outgoing = ShardEnvelope<LatticeMap<K, V>>;
    type Response = ClientResponse<LatticeMap<K, V>>;

    fn handle(&mut self, from: ReplicaId, message: Self::Incoming) {
        self.handle_message(from, message);
    }

    fn tick(&mut self, now_ms: u64) {
        ShardedReplica::tick(self, now_ms);
    }

    fn drain_outbox(&mut self) -> Vec<Self::Outgoing> {
        self.take_outbox()
    }

    fn drain_responses(&mut self) -> Vec<Self::Response> {
        self.take_responses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, Command, ProtocolConfig, ResponseBody};
    use crdt::{CounterUpdate, GCounter};

    #[test]
    fn step_drives_a_replica_cluster_to_completion() {
        let members: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
        let mut nodes: Vec<Replica<GCounter>> = members
            .iter()
            .map(|&id| {
                Replica::new(id, members.clone(), GCounter::default(), ProtocolConfig::default())
            })
            .collect();
        nodes[0].submit(ClientId(7), Command::Update(CounterUpdate::Increment(5)));

        let mut responses = Vec::new();
        let mut inboxes: Vec<Vec<(ReplicaId, crate::Message<GCounter>)>> =
            vec![Vec::new(); nodes.len()];
        for now in 0..20u64 {
            let mut quiet = true;
            for (index, node) in nodes.iter_mut().enumerate() {
                let out = node.step(now, inboxes[index].drain(..));
                responses.extend(out.responses);
                for envelope in out.outbox {
                    quiet = false;
                    inboxes[envelope.to.as_u64() as usize].push((envelope.from, envelope.message));
                }
            }
            if quiet && inboxes.iter().all(Vec::is_empty) {
                break;
            }
        }

        assert_eq!(responses.len(), 1);
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
        assert_eq!(responses[0].client, ClientId(7));
    }
}
