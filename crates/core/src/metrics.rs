//! Protocol metrics: round-trip accounting, learning-path counters, and encoded
//! bytes-on-the-wire per message kind.
//!
//! Figure 3 of the paper plots the cumulative distribution of round trips needed to
//! process reads; these metrics are the source of that distribution in our harness.
//! The wire byte counters feed the full-vs-delta payload comparison of the `bench`
//! crate's wire-bytes figure.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Message count and total encoded bytes for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindBytes {
    /// Number of messages recorded.
    pub messages: u64,
    /// Sum of their encoded sizes in bytes.
    pub bytes: u64,
}

/// Encoded bytes-on-the-wire, broken down by message kind (`MERGE`, `ACK`, …).
///
/// The replica itself is sans-io and never encodes anything; drivers that do encode
/// (the simulator adapter, the TCP runtime) report sizes via
/// [`crate::Replica::record_wire_bytes`], and this record aggregates them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Per-kind message counts and byte totals, keyed by the `&'static str`
    /// kinds [`crate::Message::wire_kind`] provides — recording never
    /// allocates a key.
    pub per_kind: BTreeMap<&'static str, KindBytes>,
}

impl WireMetrics {
    /// Records one encoded message of the given kind. The key is borrowed
    /// for `'static` (see [`crate::Message::wire_kind`]), so this is a map
    /// update with no string allocation per message.
    pub fn record(&mut self, kind: &'static str, bytes: u64) {
        let entry = self.per_kind.entry(kind).or_default();
        entry.messages += 1;
        entry.bytes += bytes;
    }

    /// Total encoded bytes for one exact kind key (0 if none recorded).
    pub fn bytes_for(&self, kind: &str) -> u64 {
        self.per_kind.get(kind).map_or(0, |entry| entry.bytes)
    }

    /// Number of messages recorded under one exact kind key (0 if none recorded).
    pub fn messages_for(&self, kind: &str) -> u64 {
        self.per_kind.get(kind).map_or(0, |entry| entry.messages)
    }

    /// Total encoded bytes for a message kind *including* payload sub-kinds:
    /// `"MERGE"` matches `"MERGE"`, `"MERGE:full"`, and `"MERGE:delta"` (drivers
    /// suffix the payload representation so full and delta bytes stay separable).
    pub fn bytes_for_kind(&self, kind: &str) -> u64 {
        self.matching(kind).map(|entry| entry.bytes).sum()
    }

    /// Number of messages for a kind including payload sub-kinds (see
    /// [`WireMetrics::bytes_for_kind`]).
    pub fn messages_for_kind(&self, kind: &str) -> u64 {
        self.matching(kind).map(|entry| entry.messages).sum()
    }

    fn matching<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a KindBytes> + 'a {
        self.per_kind.iter().filter_map(move |(&key, entry)| {
            let matches = key == kind
                || (key.len() > kind.len()
                    && key.starts_with(kind)
                    && key.as_bytes()[kind.len()] == b':');
            matches.then_some(entry)
        })
    }

    /// Total encoded bytes across all message kinds.
    pub fn total_bytes(&self) -> u64 {
        self.per_kind.values().map(|entry| entry.bytes).sum()
    }

    /// Returns `true` if no message has been recorded.
    pub fn is_empty(&self) -> bool {
        self.per_kind.is_empty()
    }

    /// Merges another record into this one (used to aggregate across replicas).
    pub fn merge(&mut self, other: &WireMetrics) {
        for (&kind, counts) in &other.per_kind {
            let entry = self.per_kind.entry(kind).or_default();
            entry.messages += counts.messages;
            entry.bytes += counts.bytes;
        }
    }
}

/// Counters collected by one replica's proposer role.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Completed update commands.
    pub updates_completed: u64,
    /// Completed query commands.
    pub queries_completed: u64,
    /// Queries answered from a *consistent quorum* (single round trip, paper case a).
    pub queries_consistent_quorum: u64,
    /// Queries answered by a successful *vote* (two round trips, paper case b).
    pub queries_by_vote: u64,
    /// Prepare phases that had to be retried (paper case c or after a NACK).
    pub prepare_retries: u64,
    /// NACK messages received.
    pub nacks_received: u64,
    /// Queries that exhausted `max_query_retries` and failed.
    pub queries_failed: u64,
    /// Histogram: number of queries that needed exactly `k` round trips.
    pub query_round_trips: BTreeMap<u32, u64>,
    /// Histogram: number of updates that needed exactly `k` round trips (always 1
    /// unless retransmissions were required).
    pub update_round_trips: BTreeMap<u32, u64>,
    /// Encoded bytes sent, per message kind (filled by drivers that encode, see
    /// [`WireMetrics`]).
    pub wire: WireMetrics,
}

impl Metrics {
    /// Creates an empty metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a completed query that needed `round_trips` round trips.
    pub fn record_query(&mut self, round_trips: u32, learned_by_vote: bool) {
        self.queries_completed += 1;
        if learned_by_vote {
            self.queries_by_vote += 1;
        } else {
            self.queries_consistent_quorum += 1;
        }
        *self.query_round_trips.entry(round_trips).or_insert(0) += 1;
    }

    /// Records a completed update that needed `round_trips` round trips.
    pub fn record_update(&mut self, round_trips: u32) {
        self.updates_completed += 1;
        *self.update_round_trips.entry(round_trips).or_insert(0) += 1;
    }

    /// Fraction of completed queries that needed at most `max_round_trips` round
    /// trips. Returns 1.0 when no queries completed.
    pub fn query_fraction_within(&self, max_round_trips: u32) -> f64 {
        if self.queries_completed == 0 {
            return 1.0;
        }
        let within: u64 = self
            .query_round_trips
            .iter()
            .filter(|(&rt, _)| rt <= max_round_trips)
            .map(|(_, &count)| count)
            .sum();
        within as f64 / self.queries_completed as f64
    }

    /// Merges another metrics record into this one (used to aggregate across
    /// replicas).
    pub fn merge(&mut self, other: &Metrics) {
        self.updates_completed += other.updates_completed;
        self.queries_completed += other.queries_completed;
        self.queries_consistent_quorum += other.queries_consistent_quorum;
        self.queries_by_vote += other.queries_by_vote;
        self.prepare_retries += other.prepare_retries;
        self.nacks_received += other.nacks_received;
        self.queries_failed += other.queries_failed;
        for (&rt, &count) in &other.query_round_trips {
            *self.query_round_trips.entry(rt).or_insert(0) += count;
        }
        for (&rt, &count) in &other.update_round_trips {
            *self.update_round_trips.entry(rt).or_insert(0) += count;
        }
        self.wire.merge(&other.wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query_fractions() {
        let mut metrics = Metrics::new();
        assert_eq!(metrics.query_fraction_within(2), 1.0);
        metrics.record_query(1, false);
        metrics.record_query(2, true);
        metrics.record_query(5, true);
        metrics.record_update(1);

        assert_eq!(metrics.queries_completed, 3);
        assert_eq!(metrics.queries_consistent_quorum, 1);
        assert_eq!(metrics.queries_by_vote, 2);
        assert_eq!(metrics.updates_completed, 1);
        assert!((metrics.query_fraction_within(2) - 2.0 / 3.0).abs() < 1e-9);
        assert!((metrics.query_fraction_within(5) - 1.0).abs() < 1e-9);
        assert_eq!(metrics.query_round_trips[&1], 1);
        assert_eq!(metrics.update_round_trips[&1], 1);
    }

    #[test]
    fn merge_aggregates_counters_and_histograms() {
        let mut a = Metrics::new();
        a.record_query(1, false);
        a.prepare_retries = 2;
        let mut b = Metrics::new();
        b.record_query(1, false);
        b.record_query(3, true);
        b.nacks_received = 4;

        a.merge(&b);
        assert_eq!(a.queries_completed, 3);
        assert_eq!(a.query_round_trips[&1], 2);
        assert_eq!(a.query_round_trips[&3], 1);
        assert_eq!(a.prepare_retries, 2);
        assert_eq!(a.nacks_received, 4);
    }

    #[test]
    fn wire_metrics_record_and_merge() {
        let mut a = WireMetrics::default();
        assert!(a.is_empty());
        a.record("MERGE", 100);
        a.record("MERGE", 50);
        a.record("MERGED", 2);
        assert_eq!(a.bytes_for("MERGE"), 150);
        assert_eq!(a.messages_for("MERGE"), 2);
        assert_eq!(a.total_bytes(), 152);
        assert_eq!(a.bytes_for("VOTE"), 0);

        let mut b = WireMetrics::default();
        b.record("MERGE", 10);
        a.merge(&b);
        assert_eq!(a.bytes_for("MERGE"), 160);
        assert_eq!(a.messages_for("MERGE"), 3);
    }

    #[test]
    fn kind_lookup_aggregates_payload_sub_kinds() {
        let mut metrics = WireMetrics::default();
        metrics.record("MERGE:full", 100);
        metrics.record("MERGE:delta", 6);
        metrics.record("MERGED", 2);
        assert_eq!(metrics.bytes_for_kind("MERGE"), 106);
        assert_eq!(metrics.messages_for_kind("MERGE"), 2);
        assert_eq!(metrics.bytes_for_kind("MERGED"), 2, "exact keys still match");
        assert_eq!(metrics.bytes_for("MERGE"), 0, "exact lookup ignores sub-kinds");
    }
}
