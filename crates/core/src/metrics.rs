//! Protocol metrics: round-trip accounting and learning-path counters.
//!
//! Figure 3 of the paper plots the cumulative distribution of round trips needed to
//! process reads; these metrics are the source of that distribution in our harness.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Counters collected by one replica's proposer role.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Completed update commands.
    pub updates_completed: u64,
    /// Completed query commands.
    pub queries_completed: u64,
    /// Queries answered from a *consistent quorum* (single round trip, paper case a).
    pub queries_consistent_quorum: u64,
    /// Queries answered by a successful *vote* (two round trips, paper case b).
    pub queries_by_vote: u64,
    /// Prepare phases that had to be retried (paper case c or after a NACK).
    pub prepare_retries: u64,
    /// NACK messages received.
    pub nacks_received: u64,
    /// Queries that exhausted `max_query_retries` and failed.
    pub queries_failed: u64,
    /// Histogram: number of queries that needed exactly `k` round trips.
    pub query_round_trips: BTreeMap<u32, u64>,
    /// Histogram: number of updates that needed exactly `k` round trips (always 1
    /// unless retransmissions were required).
    pub update_round_trips: BTreeMap<u32, u64>,
}

impl Metrics {
    /// Creates an empty metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a completed query that needed `round_trips` round trips.
    pub fn record_query(&mut self, round_trips: u32, learned_by_vote: bool) {
        self.queries_completed += 1;
        if learned_by_vote {
            self.queries_by_vote += 1;
        } else {
            self.queries_consistent_quorum += 1;
        }
        *self.query_round_trips.entry(round_trips).or_insert(0) += 1;
    }

    /// Records a completed update that needed `round_trips` round trips.
    pub fn record_update(&mut self, round_trips: u32) {
        self.updates_completed += 1;
        *self.update_round_trips.entry(round_trips).or_insert(0) += 1;
    }

    /// Fraction of completed queries that needed at most `max_round_trips` round
    /// trips. Returns 1.0 when no queries completed.
    pub fn query_fraction_within(&self, max_round_trips: u32) -> f64 {
        if self.queries_completed == 0 {
            return 1.0;
        }
        let within: u64 = self
            .query_round_trips
            .iter()
            .filter(|(&rt, _)| rt <= max_round_trips)
            .map(|(_, &count)| count)
            .sum();
        within as f64 / self.queries_completed as f64
    }

    /// Merges another metrics record into this one (used to aggregate across
    /// replicas).
    pub fn merge(&mut self, other: &Metrics) {
        self.updates_completed += other.updates_completed;
        self.queries_completed += other.queries_completed;
        self.queries_consistent_quorum += other.queries_consistent_quorum;
        self.queries_by_vote += other.queries_by_vote;
        self.prepare_retries += other.prepare_retries;
        self.nacks_received += other.nacks_received;
        self.queries_failed += other.queries_failed;
        for (&rt, &count) in &other.query_round_trips {
            *self.query_round_trips.entry(rt).or_insert(0) += count;
        }
        for (&rt, &count) in &other.update_round_trips {
            *self.update_round_trips.entry(rt).or_insert(0) += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query_fractions() {
        let mut metrics = Metrics::new();
        assert_eq!(metrics.query_fraction_within(2), 1.0);
        metrics.record_query(1, false);
        metrics.record_query(2, true);
        metrics.record_query(5, true);
        metrics.record_update(1);

        assert_eq!(metrics.queries_completed, 3);
        assert_eq!(metrics.queries_consistent_quorum, 1);
        assert_eq!(metrics.queries_by_vote, 2);
        assert_eq!(metrics.updates_completed, 1);
        assert!((metrics.query_fraction_within(2) - 2.0 / 3.0).abs() < 1e-9);
        assert!((metrics.query_fraction_within(5) - 1.0).abs() < 1e-9);
        assert_eq!(metrics.query_round_trips[&1], 1);
        assert_eq!(metrics.update_round_trips[&1], 1);
    }

    #[test]
    fn merge_aggregates_counters_and_histograms() {
        let mut a = Metrics::new();
        a.record_query(1, false);
        a.prepare_retries = 2;
        let mut b = Metrics::new();
        b.record_query(1, false);
        b.record_query(3, true);
        b.nacks_received = 4;

        a.merge(&b);
        assert_eq!(a.queries_completed, 3);
        assert_eq!(a.query_round_trips[&1], 2);
        assert_eq!(a.query_round_trips[&3], 1);
        assert_eq!(a.prepare_retries, 2);
        assert_eq!(a.nacks_received, 4);
    }
}
