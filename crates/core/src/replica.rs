//! The replica: proposer role, batching, and the local acceptor glued together.
//!
//! Every process implements both the proposer and the acceptor role (§3.2). The
//! [`Replica`] type is a *sans-io* state machine: it never performs I/O, never spawns
//! threads, and never reads a clock. Callers feed it client commands
//! ([`Replica::submit`]), replica messages ([`Replica::handle_message`]) and time
//! ([`Replica::tick`]), and drain the resulting outgoing messages
//! ([`Replica::take_outbox`]) and client responses ([`Replica::take_responses`]).
//! The same state machine is driven by the deterministic simulator, the tokio TCP
//! runtime, the thread-per-shard `engine` executor (via
//! [`ShardCore`](crate::ShardCore)), and the unit tests.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crdt::{Crdt, DeltaCrdt, ReplicaId};
use quorum::{Membership, QuorumSystem};

use crate::acceptor::{AcceptOutcome, Acceptor};
use crate::config::{PayloadMode, ProtocolConfig};
use crate::metrics::Metrics;
use crate::msg::{
    ClientId, ClientResponse, Command, CommandId, Envelope, Message, Payload, RequestId,
    ResponseBody,
};
use crate::round::{PrepareRound, Round, RoundId};

/// A client command waiting for an update round to complete.
#[derive(Debug, Clone)]
struct UpdateWaiter {
    client: ClientId,
    command: CommandId,
}

/// A client query waiting for a state to be learned.
#[derive(Debug, Clone)]
struct QueryWaiter<C: Crdt> {
    client: ClientId,
    command: CommandId,
    query: C::Query,
}

/// A small set of replica ids backed by a `Vec`.
///
/// Quorum acknowledgement sets never exceed the group size (single digits in every
/// deployment this repo models), where a linear scan beats a B-tree's per-node
/// allocations — and unlike a B-tree, a `Vec` keeps its buffer across `clear()`, so
/// the replica recycles these through a pool instead of allocating one per protocol
/// instance (see `Replica::alloc_ack_set`).
#[derive(Debug, Clone, Default)]
struct AckSet(Vec<ReplicaId>);

impl AckSet {
    /// Adds `id` if absent.
    fn insert(&mut self, id: ReplicaId) {
        if !self.contains(&id) {
            self.0.push(id);
        }
    }

    fn contains(&self, id: &ReplicaId) -> bool {
        self.0.contains(id)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn retain<F: FnMut(&ReplicaId) -> bool>(&mut self, keep: F) {
        self.0.retain(keep);
    }
}

/// The first-phase acknowledgement map `(peer, round, state)`, `Vec`-backed and
/// pooled for the same reason as [`AckSet`].
#[derive(Debug, Clone, Default)]
struct PrepareAcks<C>(Vec<(ReplicaId, Round, C)>);

impl<C> PrepareAcks<C> {
    /// Inserts or replaces the entry for `peer` (a retransmitted `ACK` supersedes
    /// the earlier one, matching map semantics).
    fn insert(&mut self, peer: ReplicaId, round: Round, state: C) {
        match self.0.iter_mut().find(|(id, _, _)| *id == peer) {
            Some(entry) => *entry = (peer, round, state),
            None => self.0.push((peer, round, state)),
        }
    }

    fn contains(&self, peer: &ReplicaId) -> bool {
        self.0.iter().any(|(id, _, _)| id == peer)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn iter(&self) -> impl Iterator<Item = &(ReplicaId, Round, C)> {
        self.0.iter()
    }

    fn retain<F: FnMut(&ReplicaId) -> bool>(&mut self, mut keep: F) {
        self.0.retain(|(id, _, _)| keep(id));
    }
}

/// Phase of an in-flight query protocol instance.
#[derive(Debug, Clone)]
enum QueryPhase<C: Crdt> {
    /// First phase: waiting for `ACK`s from a quorum.
    Prepare { round: PrepareRound, sent_state: Option<C>, acks: PrepareAcks<C> },
    /// Second phase: waiting for `VOTED`s from a quorum.
    Vote { round: Round, proposed: C, acks: AckSet },
}

/// An in-flight protocol instance at the proposer.
#[derive(Debug, Clone)]
enum InFlight<C: Crdt> {
    Update {
        waiters: Vec<UpdateWaiter>,
        merged_state: C,
        acks: AckSet,
        round_trips: u32,
        last_sent_ms: u64,
    },
    Query {
        waiters: Vec<QueryWaiter<C>>,
        phase: QueryPhase<C>,
        /// LUB of every payload state received for this query so far; used as the
        /// payload of retry prepares (§3.2, "Retrying Requests").
        gathered: C,
        /// Basis snapshots `(peer, reveal seq)` echoed by this request's messages;
        /// each holds a reference that pins the snapshot in [`PeerBasis`] until the
        /// request ends (delta mode only).
        echoes: Vec<(ReplicaId, u64)>,
        round_trips: u32,
        retries: u32,
        last_sent_ms: u64,
    },
}

/// Seq-pinned exact snapshots of one peer's acceptor state, learned from that peer's
/// reconstructed `ACK` replies (proposer side of the reply-delta handshake).
///
/// The newest snapshot's sequence number is echoed as the `basis` of outgoing
/// `PREPARE`/`VOTE` messages; the peer may then diff its reply against the snapshot.
/// Snapshots stay pinned while any in-flight request echoes them, so a delta reply
/// for a live request can always be reconstructed — replies for dead requests are
/// stale and dropped.
#[derive(Debug, Clone)]
struct PeerBasis<C> {
    latest: u64,
    states: BTreeMap<u64, BasisSlot<C>>,
}

#[derive(Debug, Clone)]
struct BasisSlot<C> {
    state: C,
    refs: u32,
}

impl<C> PeerBasis<C> {
    fn new() -> Self {
        PeerBasis { latest: 0, states: BTreeMap::new() }
    }
}

/// One replica of the CRDT Paxos protocol (proposer + acceptor).
///
/// # Example
///
/// Three replicas completing an update and a consistent read by explicitly shuttling
/// messages (what the simulator and runtimes do automatically):
///
/// ```
/// use crdt::{CounterQuery, CounterUpdate, GCounter, ReplicaId};
/// use crdt_paxos_core::{Command, ProtocolConfig, Replica, ResponseBody};
///
/// let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
/// let mut replicas: Vec<Replica<GCounter>> = ids
///     .iter()
///     .map(|&id| Replica::new(id, ids.clone(), GCounter::default(), ProtocolConfig::default()))
///     .collect();
///
/// // Client 0 submits an increment to replica 0.
/// replicas[0].submit(crdt_paxos_core::ClientId(0), Command::Update(CounterUpdate::Increment(1)));
///
/// // Deliver all produced messages until quiescence.
/// loop {
///     let mut envelopes = Vec::new();
///     for replica in &mut replicas {
///         envelopes.extend(replica.take_outbox());
///     }
///     if envelopes.is_empty() {
///         break;
///     }
///     for env in envelopes {
///         let to = env.to.as_u64() as usize;
///         replicas[to].handle_message(env.from, env.message);
///     }
/// }
/// let responses = replicas[0].take_responses();
/// assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
/// ```
#[derive(Debug)]
pub struct Replica<C: Crdt + DeltaCrdt> {
    id: ReplicaId,
    membership: Membership<ReplicaId>,
    /// All members except `id`, cached so the broadcast and retransmission fan-out
    /// paths do not re-collect a fresh `Vec` per message (hot-path allocation).
    others: Vec<ReplicaId>,
    quorum_size: usize,
    acceptor: Acceptor<C>,
    config: ProtocolConfig,
    metrics: Metrics,
    now_ms: u64,
    next_request: u64,
    next_round_seq: u64,
    next_command: u64,
    requests: BTreeMap<RequestId, InFlight<C>>,
    outbox: Vec<Envelope<C>>,
    responses: Vec<ClientResponse<C>>,
    /// Largest state ever learned by this proposer (GLA-Stability, §3.4).
    largest_learned: Option<C>,
    /// Per peer, the largest state the peer is *known* to contain, learned from its
    /// `MERGED`/`ACK`/`NACK` replies. Only maintained (and only paid for) in
    /// [`PayloadMode::DeltaWhenPossible`]; it is what makes delta payloads safe:
    /// a delta against this state lands on an acceptor that contains its baseline.
    peer_known: BTreeMap<ReplicaId, C>,
    /// Completed update instances some peers have not acknowledged yet (an update
    /// finishes at quorum, not at full coverage). Kept — bounded — so late `MERGED`
    /// replies still teach us the slow peer's state. Delta mode only.
    recent_merges: BTreeMap<RequestId, (C, BTreeSet<ReplicaId>)>,
    /// Acceptor side of the reply-delta handshake: a bounded ring of payload-state
    /// snapshots this replica revealed in `ACK`s, keyed by reveal sequence number.
    /// A request echoing one of these lets the reply ship a delta instead of the
    /// full state. Delta mode only.
    reveals: VecDeque<(u64, C)>,
    next_reveal: u64,
    /// Proposer side of the reply-delta handshake: per peer, exact snapshots of the
    /// peer's acceptor state (see [`PeerBasis`]). Delta mode only; pruned on
    /// membership change alongside `peer_known`.
    basis: BTreeMap<ReplicaId, PeerBasis<C>>,
    /// Prepare payloads of recently completed query instances (a query finishes at
    /// quorum, so the slowest acceptors' `ACK`s arrive late). Kept — bounded — so
    /// late delta-encoded ACKs remain reconstructible and still teach us the slow
    /// peer's state. Delta mode only.
    recent_prepares: BTreeMap<RequestId, C>,
    update_batch: Vec<(UpdateWaiter, C::Update)>,
    query_batch: Vec<QueryWaiter<C>>,
    next_flush_ms: u64,
    /// Recycled acknowledgement-set buffers ([`AckSet`]) — protocol instances are
    /// created and retired at workload rate, so their small `Vec`s are pooled
    /// instead of allocated per instance.
    ack_pool: Vec<Vec<ReplicaId>>,
    /// Recycled first-phase acknowledgement buffers ([`PrepareAcks`]).
    prepare_pool: Vec<Vec<(ReplicaId, Round, C)>>,
}

/// Client commands reclaimed from a replica by [`Replica::cancel_in_flight`].
///
/// The split matters for exactly-once semantics when the caller re-homes the work
/// onto another protocol instance (dynamic resharding's cutover):
///
/// * applied updates must **not** be re-submitted — their update functions already
///   grew the local acceptor state (and were consumed doing so), so re-homing them
///   means replicating that state via [`Replica::submit_resync`] on the new owner;
/// * unapplied updates and queries carry no local effect yet; their command
///   payloads are handed back so the caller can re-submit them verbatim.
#[derive(Debug)]
pub struct CancelledWork<C: Crdt> {
    /// Update commands whose update functions were already applied to the local
    /// acceptor state (their instance was in flight).
    pub applied_updates: Vec<(ClientId, CommandId)>,
    /// Update commands still sitting in an unflushed batch, applied nowhere.
    pub unapplied_updates: Vec<(ClientId, CommandId, C::Update)>,
    /// Query commands, in flight or batched.
    pub queries: Vec<(ClientId, CommandId, C::Query)>,
}

impl<C: Crdt> Default for CancelledWork<C> {
    fn default() -> Self {
        CancelledWork {
            applied_updates: Vec::new(),
            unapplied_updates: Vec::new(),
            queries: Vec::new(),
        }
    }
}

impl<C: Crdt> CancelledWork<C> {
    /// Returns `true` if nothing was in flight or batched.
    pub fn is_empty(&self) -> bool {
        self.applied_updates.is_empty()
            && self.unapplied_updates.is_empty()
            && self.queries.is_empty()
    }
}

impl<C: Crdt + DeltaCrdt> Replica<C> {
    /// Creates a replica.
    ///
    /// `members` is the full replica group (must contain `id`); `initial` is the
    /// CRDT's initial payload `s0`.
    ///
    /// # Panics
    ///
    /// Panics if `members` does not contain `id`.
    pub fn new(id: ReplicaId, members: Vec<ReplicaId>, initial: C, config: ProtocolConfig) -> Self {
        let membership = Membership::new(members);
        assert!(membership.contains(&id), "replica {id} must be part of the membership");
        let quorum_size = membership.majority().min_quorum_size();
        let batch_interval = config.batch_interval_ms;
        // Stagger the first batch flush across replicas so their batch windows do not
        // all fire at the same instant (synchronized batches would make every query
        // batch collide with every other replica's update batch).
        let position = membership.members().iter().position(|m| *m == id).unwrap_or(0) as u64;
        let flush_offset = if membership.len() > 1 {
            position * batch_interval.max(1) / membership.len() as u64
        } else {
            0
        };
        let others: Vec<ReplicaId> = membership.others(id).collect();
        Replica {
            id,
            membership,
            others,
            quorum_size,
            acceptor: Acceptor::new(id, initial),
            config,
            metrics: Metrics::new(),
            now_ms: 0,
            next_request: 0,
            next_round_seq: 0,
            next_command: 0,
            requests: BTreeMap::new(),
            outbox: Vec::new(),
            responses: Vec::new(),
            largest_learned: None,
            peer_known: BTreeMap::new(),
            recent_merges: BTreeMap::new(),
            reveals: VecDeque::new(),
            next_reveal: 1,
            basis: BTreeMap::new(),
            recent_prepares: BTreeMap::new(),
            update_batch: Vec::new(),
            query_batch: Vec::new(),
            next_flush_ms: batch_interval + flush_offset,
            ack_pool: Vec::new(),
            prepare_pool: Vec::new(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The replica group.
    pub fn membership(&self) -> &Membership<ReplicaId> {
        &self.membership
    }

    /// Replaces the replica group (administrative reconfiguration).
    ///
    /// The paper assumes static membership; this hook exists so long-lived processes
    /// can decommission peers without leaking per-peer state: the delta-payload
    /// tracking maps ([`Replica::known_peer_state`]'s `peer_known` and the
    /// recent-merge backlog) pin a full payload-state clone per tracked peer, so
    /// departed peers are garbage-collected here. Quorum sizes are re-derived and
    /// in-flight instances whose acknowledgement sets already satisfy the new
    /// (possibly smaller) quorum complete immediately.
    ///
    /// Callers are responsible for reconfiguring **all** replicas consistently (one
    /// membership epoch at a time); diverging memberships void the quorum
    /// intersection property the protocol's safety rests on.
    ///
    /// # Panics
    ///
    /// Panics if `members` does not contain this replica's id.
    pub fn update_membership(&mut self, members: Vec<ReplicaId>) {
        let membership = Membership::new(members);
        assert!(
            membership.contains(&self.id),
            "replica {} must be part of the new membership",
            self.id
        );
        self.others = membership.others(self.id).collect();
        self.quorum_size = membership.majority().min_quorum_size();
        // GC the delta-tracking state of departed peers: their full state clones in
        // `peer_known` and the basis-snapshot map, and their slots in recent-merge
        // missing sets (a departed peer will never send the late MERGED the entry
        // is waiting for).
        self.peer_known.retain(|peer, _| membership.contains(peer));
        self.basis.retain(|peer, _| membership.contains(peer));
        self.recent_merges.retain(|_, (_, missing)| {
            missing.retain(|peer| membership.contains(peer));
            !missing.is_empty()
        });
        // Acknowledgements from departed peers must not count toward the new
        // (possibly smaller) quorums: an instance "stored at a quorum" must mean a
        // quorum of the *current* group, or quorum intersection — and with it
        // update visibility — is void. Retransmission re-contacts current members.
        for entry in self.requests.values_mut() {
            match entry {
                InFlight::Update { acks, .. } => acks.retain(|peer| membership.contains(peer)),
                InFlight::Query { phase, .. } => match phase {
                    QueryPhase::Prepare { acks, .. } => {
                        acks.retain(|peer| membership.contains(peer));
                    }
                    QueryPhase::Vote { acks, .. } => {
                        acks.retain(|peer| membership.contains(peer));
                    }
                },
            }
        }
        self.membership = membership;
        self.recheck_quorums();
    }

    /// Re-evaluates every in-flight instance against the current quorum size (used
    /// after a membership change shrank the group).
    fn recheck_quorums(&mut self) {
        let requests: Vec<RequestId> = self.requests.keys().copied().collect();
        for request in requests {
            match self.requests.get(&request) {
                Some(InFlight::Update { acks, .. }) if acks.len() >= self.quorum_size => {
                    self.complete_update(request);
                }
                Some(InFlight::Query { phase: QueryPhase::Prepare { .. }, .. }) => {
                    self.maybe_finish_prepare(request);
                }
                Some(InFlight::Query {
                    phase: QueryPhase::Vote { acks, proposed, .. }, ..
                }) if acks.len() >= self.quorum_size => {
                    let proposed = proposed.clone();
                    self.finish_query(request, proposed, true);
                }
                _ => {}
            }
        }
    }

    /// The local acceptor's payload state (useful for tests and observability; reads
    /// that need linearizability must go through [`Replica::submit`]).
    pub fn local_state(&self) -> &C {
        self.acceptor.state()
    }

    /// Proposer metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of protocol instances currently in flight.
    pub fn in_flight(&self) -> usize {
        self.requests.len()
    }

    /// The largest state `peer` is known to contain (delta-payload tracking).
    ///
    /// Always `None` in [`PayloadMode::Full`], where the tracking is disabled.
    pub fn known_peer_state(&self, peer: ReplicaId) -> Option<&C> {
        self.peer_known.get(&peer)
    }

    /// Records the encoded size of one outgoing message, by kind.
    ///
    /// The replica is sans-io and never encodes messages itself; drivers that do
    /// (the simulator adapter, the TCP runtime) report sizes here so they surface in
    /// [`Metrics::wire`].
    pub fn record_wire_bytes(&mut self, kind: &'static str, bytes: u64) {
        self.metrics.wire.record(kind, bytes);
    }

    /// Submits a client command and returns the id used to correlate the response.
    pub fn submit(&mut self, client: ClientId, command: Command<C>) -> CommandId {
        let command_id = CommandId(self.next_command);
        self.next_command += 1;
        match command {
            Command::Update(update) => {
                let waiter = UpdateWaiter { client, command: command_id };
                if self.config.batching {
                    self.update_batch.push((waiter, update));
                } else {
                    self.start_update(vec![(waiter, update)]);
                }
            }
            Command::Query(query) => {
                let waiter = QueryWaiter { client, command: command_id, query };
                if self.config.batching {
                    self.query_batch.push(waiter);
                } else {
                    self.start_query(vec![waiter]);
                }
            }
        }
        command_id
    }

    /// Convenience wrapper for [`Replica::submit`] with an update command.
    pub fn submit_update(&mut self, client: ClientId, update: C::Update) -> CommandId {
        self.submit(client, Command::Update(update))
    }

    /// Convenience wrapper for [`Replica::submit`] with a query command.
    pub fn submit_query(&mut self, client: ClientId, query: C::Query) -> CommandId {
        self.submit(client, Command::Query(query))
    }

    /// Handles a protocol message from another replica.
    ///
    /// Messages from processes outside the current membership are dropped: after a
    /// reconfiguration, a departed peer's late acknowledgements must not count
    /// toward quorums of the new group.
    pub fn handle_message(&mut self, from: ReplicaId, message: Message<C>) {
        let mut message = message;
        self.handle_message_mut(from, &mut message);
    }

    /// [`Replica::handle_message`] over a borrowed message.
    ///
    /// This is the allocation-free entry point for the inbound hot path: a
    /// worker decodes each frame into a per-worker scratch message (reusing
    /// its resident allocations) and hands it in by reference. The accepting
    /// arms (`Merge`, `Prepare`, `Vote`) only read the payload, so the scratch
    /// survives intact for the next frame; the reply-resolution arms
    /// (`PrepareAck`, `Nack`) genuinely consume their state and take it out of
    /// the scratch, leaving a cheap placeholder.
    pub fn handle_message_mut(&mut self, from: ReplicaId, message: &mut Message<C>) {
        if !self.membership.contains(&from) {
            return;
        }
        match message {
            Message::Merge { request, payload } => {
                let request = *request;
                self.acceptor.handle_merge(payload);
                self.send(from, Message::MergeAck { request });
            }
            Message::MergeAck { request } => self.handle_merge_ack(from, *request),
            Message::Prepare { request, round, payload, basis } => {
                let (request, round, basis) = (*request, *round, *basis);
                let outcome = self.acceptor.handle_prepare(round, payload.as_ref());
                let reply = match outcome {
                    AcceptOutcome::Ack { round } => {
                        let state = self.acceptor.state().clone();
                        let (state, reveal, used) =
                            self.build_reply(state, payload.as_ref(), basis, true);
                        Message::PrepareAck { request, round, state, reveal, basis: used }
                    }
                    // Prepare rejections reply with the full state: by the time the
                    // NACK arrives the proposer may have moved to the vote phase,
                    // where the prepare payload is no longer a reconstruction
                    // baseline it holds.
                    AcceptOutcome::Nack { round } => {
                        let state = self.acceptor.state().clone();
                        Message::Nack { request, round, state: Payload::Full(state), basis: 0 }
                    }
                };
                self.send(from, reply);
            }
            Message::Vote { request, round, payload, basis } => {
                let (request, round, basis) = (*request, *round, *basis);
                let outcome = self.acceptor.handle_vote(round, payload);
                let reply = match outcome {
                    // The §3.6 optimization pays off here: a `VOTED` carries no
                    // state, so the acceptor's (possibly large) payload is not
                    // cloned at all on the accepting hot path.
                    AcceptOutcome::Ack { .. } => Message::VoteAck { request },
                    AcceptOutcome::Nack { round } => {
                        let state = self.acceptor.state().clone();
                        let (state, _, used) =
                            self.build_reply(state, Some(&*payload), basis, false);
                        Message::Nack { request, round, state, basis: used }
                    }
                };
                self.send(from, reply);
            }
            Message::VoteAck { request } => self.handle_vote_ack(from, *request),
            Message::PrepareAck { request, .. } | Message::Nack { request, .. } => {
                let request = *request;
                let taken = std::mem::replace(message, Message::MergeAck { request });
                match taken {
                    Message::PrepareAck { request, round, state, reveal, basis } => {
                        // Resolve the reply payload to the acceptor's exact state.
                        // Full replies teach the proposer the peer's lower bound
                        // even when the request is no longer in flight; delta
                        // replies need the in-flight request's baselines, so stale
                        // ones are dropped.
                        let Some(state) =
                            self.resolve_prepare_reply(from, request, state, reveal, basis)
                        else {
                            return;
                        };
                        self.note_peer_state(from, &state);
                        self.handle_prepare_ack(from, request, round, state);
                    }
                    Message::Nack { request, round, state, basis } => {
                        let Some(state) = self.resolve_nack_reply(from, request, state, basis)
                        else {
                            return;
                        };
                        self.note_peer_state(from, &state);
                        self.handle_nack(request, round, state);
                    }
                    _ => unreachable!("placeholder swap only happens for PrepareAck/Nack"),
                }
            }
        }
    }

    /// Advances the replica's notion of time, flushing batches and retransmitting
    /// stalled requests.
    pub fn tick(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
        if self.config.batching && self.now_ms >= self.next_flush_ms {
            self.flush_batches();
            self.next_flush_ms = self.now_ms + self.config.batch_interval_ms;
        }
        self.retransmit_stalled();
    }

    /// Drains the messages produced since the last call.
    pub fn take_outbox(&mut self) -> Vec<Envelope<C>> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains the messages produced since the last call into `sink`, preserving
    /// both buffers' capacity.
    ///
    /// Unlike [`Replica::take_outbox`] — which surrenders the outbox buffer to the
    /// caller and re-grows a fresh one on the next send — this keeps the internal
    /// buffer's allocation alive and appends into a caller-owned buffer, so a
    /// driver polling the replica in a loop performs no per-cycle envelope
    /// allocations once both buffers reach their high-water mark.
    pub fn drain_outbox_into(&mut self, sink: &mut Vec<Envelope<C>>) {
        sink.append(&mut self.outbox);
    }

    /// Joins `state` directly into the local acceptor's payload, as a `MERGE`
    /// carrying it would (see [`Acceptor::absorb`]).
    ///
    /// This is the lattice-join state handoff of dynamic resharding: the sharded
    /// engine grafts a moved key range into the destination instance's acceptor
    /// before any post-rebalance traffic reaches it. Quorum intersection then
    /// guarantees new-epoch reads observe every old-epoch committed update: a
    /// committed update was joined by a quorum of source acceptors, each of which
    /// absorbs its own copy into the destination before serving the new epoch.
    pub fn absorb_state(&mut self, state: &C) {
        self.acceptor.absorb(state);
    }

    /// Starts one update instance that replicates the acceptor's **current** state
    /// to a quorum without applying any new update function, answering
    /// `UpdateDone` to each given client once the state is stored. Returns one
    /// command id per client, in order.
    ///
    /// This is the durability half of a state handoff: update commands cut over
    /// mid-flight by a rebalance already grew the local state (re-submitting their
    /// update functions would double-apply), so they complete exactly once by
    /// replicating that state as-is on the key's new owner instance. An empty
    /// client list is allowed — the resulting waiterless instance is used to push
    /// freshly handed-off ranges to a quorum ahead of client traffic.
    pub fn submit_resync(&mut self, clients: &[ClientId]) -> Vec<CommandId> {
        let mut waiters = Vec::with_capacity(clients.len());
        let mut ids = Vec::with_capacity(clients.len());
        for &client in clients {
            let command = CommandId(self.next_command);
            self.next_command += 1;
            ids.push(command);
            waiters.push(UpdateWaiter { client, command });
        }
        let merged_state = self.acceptor.state().clone();
        self.launch_update(waiters, merged_state);
        ids
    }

    /// Cancels every in-flight protocol instance and unflushed batch, returning
    /// the client commands that were riding on them (see [`CancelledWork`] for the
    /// exactly-once re-homing contract).
    ///
    /// Replies to the cancelled instances arriving later are dropped by their
    /// stale request ids. The acceptor state is untouched: cancellation abandons
    /// coordination, not data.
    pub fn cancel_in_flight(&mut self) -> CancelledWork<C> {
        let mut work = CancelledWork::default();
        let ids: Vec<RequestId> = self.requests.keys().copied().collect();
        for request in ids {
            match self.remove_request(request) {
                Some(InFlight::Update { waiters, .. }) => {
                    work.applied_updates.extend(waiters.into_iter().map(|w| (w.client, w.command)))
                }
                Some(InFlight::Query { waiters, .. }) => {
                    work.queries
                        .extend(waiters.into_iter().map(|w| (w.client, w.command, w.query)));
                }
                None => {}
            }
        }
        for (waiter, update) in self.update_batch.drain(..) {
            work.unapplied_updates.push((waiter.client, waiter.command, update));
        }
        for waiter in self.query_batch.drain(..) {
            work.queries.push((waiter.client, waiter.command, waiter.query));
        }
        work
    }

    /// Drains the client responses produced since the last call.
    pub fn take_responses(&mut self) -> Vec<ClientResponse<C>> {
        std::mem::take(&mut self.responses)
    }

    // ----- internals -------------------------------------------------------------

    fn send(&mut self, to: ReplicaId, message: Message<C>) {
        self.outbox.push(Envelope { from: self.id, to, message });
    }

    /// Sends the same message to every peer; the last envelope takes ownership of
    /// the message instead of cloning it (one payload clone saved per broadcast).
    fn broadcast(&mut self, message: Message<C>) {
        let Some((&last, rest)) = self.others.split_last() else { return };
        for &peer in rest {
            self.outbox.push(Envelope { from: self.id, to: peer, message: message.clone() });
        }
        self.outbox.push(Envelope { from: self.id, to: last, message });
    }

    /// Records that `peer` is known to contain (at least) `state`.
    ///
    /// Only active in [`PayloadMode::DeltaWhenPossible`]; the paper-faithful full
    /// mode pays neither the memory nor the join.
    fn note_peer_state(&mut self, peer: ReplicaId, state: &C) {
        if self.config.payload_mode != PayloadMode::DeltaWhenPossible || peer == self.id {
            return;
        }
        Self::note_peer(&mut self.peer_known, peer, state);
    }

    /// [`Replica::note_peer_state`] without the config/id guards, callable while
    /// another field of `self` (e.g. `requests`) is mutably borrowed.
    fn note_peer(peer_known: &mut BTreeMap<ReplicaId, C>, peer: ReplicaId, state: &C) {
        match peer_known.get_mut(&peer) {
            Some(known) => known.join(state),
            None => {
                peer_known.insert(peer, state.clone());
            }
        }
    }

    /// Builds the payload to ship `state` to `peer`: a delta when the peer is known
    /// to contain a baseline, the full state otherwise (first contact).
    fn payload_for(&self, peer: ReplicaId, state: &C) -> Payload<C> {
        match self.peer_known.get(&peer) {
            Some(known) => Payload::Delta(state.delta_since(known)),
            None => Payload::Full(state.clone()),
        }
    }

    /// Whether outgoing payloads to peers may be deltas right now.
    fn delta_payloads_enabled(&self) -> bool {
        self.config.payload_mode == PayloadMode::DeltaWhenPossible
    }

    /// How many revealed-state snapshots the acceptor side remembers for the
    /// reply-delta handshake.
    const REVEAL_RING_CAP: usize = 16;

    /// Builds the state payload of an `ACK` (or vote `NACK`) reply, plus the reveal
    /// and used-basis sequence numbers to ship with it.
    ///
    /// The delta baseline is the *exact* state the proposer provably holds for this
    /// request: the content of the request's own payload (the proposer stored the
    /// full state it shipped as `sent_state` / `proposed`), joined with the revealed
    /// snapshot whose sequence number the request echoed (the proposer pins echoed
    /// snapshots for as long as the request is in flight). Exactness — not merely a
    /// lower bound — is required because the proposer's consistent-quorum check
    /// compares acceptor states for equality; baselines tracked cumulatively across
    /// requests would drift under message loss and reordering and are deliberately
    /// not used. `reveal` is `true` for `ACK`s, which advertise the replied state as
    /// a future baseline; `NACK`s carry no reveal slot.
    fn build_reply(
        &mut self,
        state: C,
        request_payload: Option<&Payload<C>>,
        echoed: u64,
        reveal: bool,
    ) -> (Payload<C>, u64, u64) {
        if !self.delta_payloads_enabled() {
            return (Payload::Full(state), 0, 0);
        }
        let snapshot = if echoed != 0 {
            self.reveals.iter().find(|(seq, _)| *seq == echoed).map(|(_, s)| s)
        } else {
            None
        };
        let used = if snapshot.is_some() { echoed } else { 0 };
        let mut baseline: Option<C> = snapshot.cloned();
        match request_payload {
            Some(Payload::Full(content)) => match &mut baseline {
                Some(base) => base.join(content),
                None => baseline = Some(content.clone()),
            },
            Some(Payload::Delta(delta)) => match &mut baseline {
                Some(base) => base.apply_delta(delta),
                None => baseline = Some(C::from_delta(delta)),
            },
            None => {}
        }
        let reveal_seq = if reveal {
            let seq = self.next_reveal;
            self.next_reveal += 1;
            if self.reveals.len() >= Self::REVEAL_RING_CAP {
                self.reveals.pop_front();
            }
            self.reveals.push_back((seq, state.clone()));
            seq
        } else {
            0
        };
        let payload = match baseline {
            Some(base) => Payload::Delta(state.delta_since(&base)),
            None => Payload::Full(state),
        };
        (payload, reveal_seq, used)
    }

    /// Resolves an `ACK`'s state payload to the acceptor's exact state: full replies
    /// resolve directly, delta replies join on top of the prepare payload stored
    /// with the in-flight request and the pinned basis snapshot the reply names. A
    /// delta reply whose baselines are gone (the request completed or was retried
    /// under a fresh id) is stale and unreconstructible; `None` tells the caller to
    /// drop it. Reconstructed (and full) replies install the revealed state as the
    /// peer's newest basis snapshot.
    fn resolve_prepare_reply(
        &mut self,
        from: ReplicaId,
        request: RequestId,
        state: Payload<C>,
        reveal: u64,
        basis: u64,
    ) -> Option<C> {
        let resolved = match state {
            Payload::Full(state) => Some(state),
            Payload::Delta(delta) => {
                let sent = match self.requests.get(&request) {
                    Some(InFlight::Query {
                        phase: QueryPhase::Prepare { sent_state, .. }, ..
                    }) => sent_state.clone(),
                    Some(_) => return None,
                    // The request already completed: a late ACK is still
                    // reconstructible against the remembered prepare payload.
                    None => Some(self.recent_prepares.get(&request)?.clone()),
                };
                let snapshot = if basis != 0 {
                    match self.basis_snapshot(from, basis) {
                        Some(snapshot) => Some(snapshot.clone()),
                        None => return None,
                    }
                } else {
                    None
                };
                let mut base = match (sent, snapshot) {
                    (Some(mut sent), Some(snapshot)) => {
                        sent.join(&snapshot);
                        sent
                    }
                    (Some(sent), None) => sent,
                    (None, Some(snapshot)) => snapshot,
                    // The acceptor only delta-encodes against a baseline; a delta
                    // reply to a payload-less, basis-less request is malformed.
                    (None, None) => return None,
                };
                base.apply_delta(&delta);
                Some(base)
            }
        };
        if reveal != 0 {
            if let Some(state) = &resolved {
                self.install_basis(from, reveal, state.clone());
            }
        }
        resolved
    }

    /// [`Replica::resolve_prepare_reply`] for `NACK`s: delta-encoded NACKs only
    /// answer votes, so the baseline is the in-flight proposal (plus the named basis
    /// snapshot).
    fn resolve_nack_reply(
        &mut self,
        from: ReplicaId,
        request: RequestId,
        state: Payload<C>,
        basis: u64,
    ) -> Option<C> {
        match state {
            Payload::Full(state) => Some(state),
            Payload::Delta(delta) => {
                let mut base = match self.requests.get(&request) {
                    Some(InFlight::Query { phase: QueryPhase::Vote { proposed, .. }, .. }) => {
                        proposed.clone()
                    }
                    _ => return None,
                };
                if basis != 0 {
                    match self.basis_snapshot(from, basis) {
                        Some(snapshot) => base.join(snapshot),
                        None => return None,
                    }
                }
                base.apply_delta(&delta);
                Some(base)
            }
        }
    }

    // ----- basis snapshot bookkeeping (proposer side of the reply handshake) -----

    /// The pinned snapshot of `peer`'s state revealed under `seq`, if still held.
    fn basis_snapshot(&self, peer: ReplicaId, seq: u64) -> Option<&C> {
        self.basis.get(&peer)?.states.get(&seq).map(|slot| &slot.state)
    }

    /// Installs `state` as `peer`'s newest revealed snapshot (ignoring stale
    /// reveals) and evicts the previous newest if nothing references it anymore.
    fn install_basis(&mut self, peer: ReplicaId, seq: u64, state: C) {
        let entry = self.basis.entry(peer).or_insert_with(PeerBasis::new);
        if seq <= entry.latest {
            return;
        }
        let previous = entry.latest;
        entry.latest = seq;
        entry.states.insert(seq, BasisSlot { state, refs: 0 });
        if previous != 0 {
            if let Some(slot) = entry.states.get(&previous) {
                if slot.refs == 0 {
                    entry.states.remove(&previous);
                }
            }
        }
    }

    /// Pins and returns `peer`'s newest snapshot seq for echoing in an outgoing
    /// request (0 when none is held).
    fn echo_basis(&mut self, peer: ReplicaId) -> u64 {
        let Some(entry) = self.basis.get_mut(&peer) else { return 0 };
        if entry.latest == 0 {
            return 0;
        }
        match entry.states.get_mut(&entry.latest) {
            Some(slot) => {
                slot.refs += 1;
                entry.latest
            }
            None => 0,
        }
    }

    /// Releases one pin on `peer`'s snapshot `seq`, dropping it when unreferenced
    /// and superseded.
    fn deref_basis(&mut self, peer: ReplicaId, seq: u64) {
        let Some(entry) = self.basis.get_mut(&peer) else { return };
        let remove = match entry.states.get_mut(&seq) {
            Some(slot) => {
                slot.refs = slot.refs.saturating_sub(1);
                slot.refs == 0 && seq != entry.latest
            }
            None => false,
        };
        if remove {
            entry.states.remove(&seq);
        }
    }

    /// Records `echoes` on the in-flight request so its pins are released when the
    /// request ends; releases them immediately if the request is already gone.
    fn attach_echoes(&mut self, request: RequestId, new_echoes: Vec<(ReplicaId, u64)>) {
        if new_echoes.is_empty() {
            return;
        }
        match self.requests.get_mut(&request) {
            Some(InFlight::Query { echoes, .. }) => echoes.extend(new_echoes),
            _ => {
                for (peer, seq) in new_echoes {
                    self.deref_basis(peer, seq);
                }
            }
        }
    }

    /// How many completed prepare payloads are remembered for the sake of late
    /// delta-encoded `ACK`s (delta-payload tracking only).
    const RECENT_PREPARE_CAP: usize = 16;

    /// Removes an in-flight request, releasing the basis pins it held and (in delta
    /// mode) remembering its prepare payload for late `ACK` reconstruction.
    fn remove_request(&mut self, request: RequestId) -> Option<InFlight<C>> {
        let mut entry = self.requests.remove(&request)?;
        match &mut entry {
            InFlight::Update { acks, .. } => self.recycle_ack_set(acks),
            InFlight::Query { echoes, phase, .. } => {
                for &(peer, seq) in echoes.iter() {
                    self.deref_basis(peer, seq);
                }
                if self.delta_payloads_enabled() {
                    if let QueryPhase::Prepare { sent_state, .. } = phase {
                        if let Some(sent) = sent_state.take() {
                            while self.recent_prepares.len() >= Self::RECENT_PREPARE_CAP {
                                self.recent_prepares.pop_first();
                            }
                            self.recent_prepares.insert(request, sent);
                        }
                    }
                }
                match phase {
                    QueryPhase::Prepare { acks, .. } => self.recycle_prepare_acks(acks),
                    QueryPhase::Vote { acks, .. } => self.recycle_ack_set(acks),
                }
            }
        }
        Some(entry)
    }

    /// Broadcasts a `MERGE` for `state`, per-peer delta-encoded when possible.
    ///
    /// Takes the state by value so the paper-faithful full mode moves it straight
    /// into the (last) envelope instead of cloning.
    fn broadcast_merge(&mut self, request: RequestId, state: C) {
        if self.delta_payloads_enabled() {
            for index in 0..self.others.len() {
                let peer = self.others[index];
                let payload = self.payload_for(peer, &state);
                self.send(peer, Message::Merge { request, payload });
            }
        } else {
            self.broadcast(Message::Merge { request, payload: Payload::Full(state) });
        }
    }

    /// Broadcasts a `PREPARE`, per-peer delta-encoded when possible (with a basis
    /// echo so the `ACK` can be a delta too). Retries pass `allow_delta = false`
    /// and fall back to full payloads (NACK recovery).
    fn broadcast_prepare(
        &mut self,
        request: RequestId,
        round: PrepareRound,
        state: Option<C>,
        allow_delta: bool,
    ) {
        if allow_delta && self.delta_payloads_enabled() {
            let mut echoes: Vec<(ReplicaId, u64)> = Vec::new();
            for index in 0..self.others.len() {
                let peer = self.others[index];
                let payload = state.as_ref().map(|state| self.payload_for(peer, state));
                let basis = self.echo_basis(peer);
                if basis != 0 {
                    echoes.push((peer, basis));
                }
                self.send(peer, Message::Prepare { request, round, payload, basis });
            }
            self.attach_echoes(request, echoes);
        } else {
            self.broadcast(Message::Prepare {
                request,
                round,
                payload: state.map(Payload::Full),
                basis: 0,
            });
        }
    }

    /// Broadcasts a `VOTE` for `state`, per-peer delta-encoded when possible.
    fn broadcast_vote(&mut self, request: RequestId, round: Round, state: C) {
        if self.delta_payloads_enabled() {
            let mut echoes: Vec<(ReplicaId, u64)> = Vec::new();
            for index in 0..self.others.len() {
                let peer = self.others[index];
                let payload = self.payload_for(peer, &state);
                let basis = self.echo_basis(peer);
                if basis != 0 {
                    echoes.push((peer, basis));
                }
                self.send(peer, Message::Vote { request, round, payload, basis });
            }
            self.attach_echoes(request, echoes);
        } else {
            self.broadcast(Message::Vote {
                request,
                round,
                payload: Payload::Full(state),
                basis: 0,
            });
        }
    }

    /// Upper bound on pooled acknowledgement buffers of either kind.
    const ACK_POOL_CAP: usize = 64;

    fn alloc_ack_set(&mut self) -> AckSet {
        AckSet(self.ack_pool.pop().unwrap_or_default())
    }

    fn recycle_ack_set(&mut self, set: &mut AckSet) {
        if self.ack_pool.len() < Self::ACK_POOL_CAP {
            let mut buffer = std::mem::take(&mut set.0);
            buffer.clear();
            self.ack_pool.push(buffer);
        }
    }

    fn alloc_prepare_acks(&mut self) -> PrepareAcks<C> {
        PrepareAcks(self.prepare_pool.pop().unwrap_or_default())
    }

    fn recycle_prepare_acks(&mut self, acks: &mut PrepareAcks<C>) {
        if self.prepare_pool.len() < Self::ACK_POOL_CAP {
            let mut buffer = std::mem::take(&mut acks.0);
            buffer.clear();
            self.prepare_pool.push(buffer);
        }
    }

    fn alloc_request(&mut self) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        id
    }

    fn new_round_id(&mut self) -> RoundId {
        let seq = self.next_round_seq;
        self.next_round_seq += 1;
        RoundId::proposer(seq, self.id)
    }

    fn respond(
        &mut self,
        client: ClientId,
        command: CommandId,
        body: ResponseBody<C>,
        round_trips: u32,
    ) {
        self.responses.push(ClientResponse { client, command, body, round_trips });
    }

    /// Starts one update protocol instance covering all the given (waiter, update)
    /// pairs (a single pair without batching, a whole batch otherwise).
    fn start_update(&mut self, batch: Vec<(UpdateWaiter, C::Update)>) {
        debug_assert!(!batch.is_empty());
        let mut waiters = Vec::with_capacity(batch.len());
        for (waiter, update) in batch {
            self.acceptor.apply_update(&update);
            waiters.push(waiter);
        }
        // One clone per protocol instance, after every batched update applied.
        self.launch_update(waiters, self.acceptor.state().clone());
    }

    /// Starts the quorum half of an update instance: `merged_state` is the local
    /// acceptor state to replicate, with all update functions (if any) already
    /// applied. Shared by [`Replica::start_update`] and [`Replica::submit_resync`].
    fn launch_update(&mut self, waiters: Vec<UpdateWaiter>, merged_state: C) {
        let request = self.alloc_request();
        let mut acks = self.alloc_ack_set();
        acks.insert(self.id);
        if acks.len() >= self.quorum_size {
            self.recycle_ack_set(&mut acks);
            self.finish_update(waiters, 1);
            return;
        }
        self.requests.insert(
            request,
            InFlight::Update {
                waiters,
                merged_state: merged_state.clone(),
                acks,
                round_trips: 1,
                last_sent_ms: self.now_ms,
            },
        );
        self.broadcast_merge(request, merged_state);
    }

    /// Starts one query protocol instance covering all the given waiters.
    fn start_query(&mut self, waiters: Vec<QueryWaiter<C>>) {
        debug_assert!(!waiters.is_empty());
        let request = self.alloc_request();
        let gathered = self.acceptor.state().clone();
        let entry = InFlight::Query {
            waiters,
            phase: QueryPhase::Prepare {
                round: PrepareRound::Incremental { id: RoundId::Bottom },
                sent_state: None,
                acks: PrepareAcks::default(),
            },
            gathered,
            echoes: Vec::new(),
            round_trips: 0,
            retries: 0,
            last_sent_ms: self.now_ms,
        };
        self.requests.insert(request, entry);
        let id = self.new_round_id();
        self.begin_prepare(request, PrepareRound::Incremental { id }, true);
    }

    /// Sends the first query phase for `request` with the given round and records the
    /// local acceptor's answer immediately. `allow_delta` is `false` on retries,
    /// where the payload falls back to the full state (NACK recovery).
    fn begin_prepare(&mut self, request: RequestId, round: PrepareRound, allow_delta: bool) {
        // Decide which payload to ship: the LUB gathered so far, unless it is still
        // the initial state (§3.6: never ship s0) or the config disables it.
        let (payload, local_outcome) = {
            let Some(InFlight::Query { gathered, .. }) = self.requests.get(&request) else {
                return;
            };
            let payload = if self.config.send_state_in_prepare && !gathered.leq(&C::default()) {
                Some(gathered.clone())
            } else {
                None
            };
            let local_outcome = self.acceptor.prepare_local(round, payload.as_ref());
            (payload, local_outcome)
        };

        let mut acks = self.alloc_prepare_acks();
        let Some(InFlight::Query { phase, gathered, round_trips, last_sent_ms, .. }) =
            self.requests.get_mut(&request)
        else {
            self.recycle_prepare_acks(&mut acks);
            return;
        };
        *round_trips += 1;
        *last_sent_ms = self.now_ms;
        match local_outcome {
            AcceptOutcome::Ack { round: acked_round } => {
                let state = self.acceptor.state();
                gathered.join(state);
                acks.insert(self.id, acked_round, state.clone());
            }
            AcceptOutcome::Nack { round: _ } => {
                // Only possible for a fixed prepare that lost locally; keep going, the
                // remote acceptors may still accept, and the retry logic handles the
                // rest.
                gathered.join(self.acceptor.state());
            }
        }
        *phase = QueryPhase::Prepare { round, sent_state: payload.clone(), acks };
        self.broadcast_prepare(request, round, payload, allow_delta);
        self.maybe_finish_prepare(request);
    }

    /// How many quorum-complete update instances are remembered for the sake of
    /// late `MERGED` replies (delta-payload tracking only).
    const RECENT_MERGE_CAP: usize = 64;

    fn handle_merge_ack(&mut self, from: ReplicaId, request: RequestId) {
        let track = self.config.payload_mode == PayloadMode::DeltaWhenPossible;
        let finished = match self.requests.get_mut(&request) {
            Some(InFlight::Update { acks, merged_state, .. }) => {
                acks.insert(from);
                // The MERGED proves the peer joined this instance's payload: its
                // state now contains the state this proposer merged.
                if track && from != self.id {
                    Self::note_peer(&mut self.peer_known, from, merged_state);
                }
                acks.len() >= self.quorum_size
            }
            _ => {
                // A late MERGED for an instance that already reached quorum: it
                // still proves the peer holds the merged state.
                let mut emptied = false;
                if let Some((state, missing)) = self.recent_merges.get_mut(&request) {
                    if missing.remove(&from) {
                        Self::note_peer(&mut self.peer_known, from, state);
                        emptied = missing.is_empty();
                    }
                }
                if emptied {
                    self.recent_merges.remove(&request);
                }
                false
            }
        };
        if finished {
            self.complete_update(request);
        }
    }

    /// Removes a quorum-complete update instance, remembers it for late `MERGED`
    /// replies (delta mode), and responds to its waiters.
    fn complete_update(&mut self, request: RequestId) {
        // Which peers still owe a MERGED, computed before the instance (and its
        // pooled acknowledgement buffer) is retired.
        let missing: Option<BTreeSet<ReplicaId>> =
            if self.config.payload_mode == PayloadMode::DeltaWhenPossible {
                match self.requests.get(&request) {
                    Some(InFlight::Update { acks, .. }) => {
                        Some(self.others.iter().copied().filter(|p| !acks.contains(p)).collect())
                    }
                    _ => None,
                }
            } else {
                None
            };
        let Some(InFlight::Update { waiters, round_trips, merged_state, .. }) =
            self.remove_request(request)
        else {
            return;
        };
        if let Some(missing) = missing {
            if !missing.is_empty() {
                while self.recent_merges.len() >= Self::RECENT_MERGE_CAP {
                    self.recent_merges.pop_first();
                }
                self.recent_merges.insert(request, (merged_state, missing));
            }
        }
        self.finish_update(waiters, round_trips);
    }

    fn finish_update(&mut self, waiters: Vec<UpdateWaiter>, round_trips: u32) {
        for waiter in waiters {
            self.metrics.record_update(round_trips);
            self.respond(waiter.client, waiter.command, ResponseBody::UpdateDone, round_trips);
        }
    }

    fn handle_prepare_ack(&mut self, from: ReplicaId, request: RequestId, round: Round, state: C) {
        match self.requests.get_mut(&request) {
            Some(InFlight::Query { phase: QueryPhase::Prepare { acks, .. }, gathered, .. }) => {
                gathered.join(&state);
                acks.insert(from, round, state);
            }
            _ => return,
        }
        self.maybe_finish_prepare(request);
    }

    /// Checks whether the first query phase has gathered a quorum and decides between
    /// the three outcomes of the paper (lines 11–21): learn by consistent quorum,
    /// propose a vote, or retry with a fixed prepare.
    fn maybe_finish_prepare(&mut self, request: RequestId) {
        enum Decision<C> {
            ConsistentQuorum(C),
            Vote(Round, C),
            Retry(u64),
        }

        let decision = {
            let Some(InFlight::Query { phase: QueryPhase::Prepare { acks, .. }, .. }) =
                self.requests.get(&request)
            else {
                return;
            };
            if acks.len() < self.quorum_size {
                return;
            }
            // s' ← ⊔ S˘ (line 12)
            let mut lub: Option<C> = None;
            for (_, _, state) in acks.iter() {
                match &mut lub {
                    Some(acc) => acc.join(state),
                    None => lub = Some(state.clone()),
                }
            }
            let lub = lub.expect("quorum is non-empty");
            if acks.iter().all(|(_, _, state)| state.equivalent(&lub)) {
                // Case (a): learned unanimously by consistent states (lines 13–15).
                Decision::ConsistentQuorum(lub)
            } else {
                let mut rounds = acks.iter().map(|(_, round, _)| *round);
                let first = rounds.next().expect("quorum is non-empty");
                if rounds.all(|r| r == first) {
                    // Case (b): consistent rounds, propose to learn the LUB (lines 16–17).
                    Decision::Vote(first, lub)
                } else {
                    // Case (c): inconsistent rounds, retry with a greater round (lines 18–21).
                    let max_number =
                        acks.iter().map(|(_, round, _)| round.number).max().expect("non-empty");
                    Decision::Retry(max_number)
                }
            }
        };

        match decision {
            Decision::ConsistentQuorum(state) => self.finish_query(request, state, false),
            Decision::Vote(round, proposed) => self.enter_vote_phase(request, round, proposed),
            Decision::Retry(max_number) => {
                self.metrics.prepare_retries += 1;
                let id = self.new_round_id();
                let next = PrepareRound::Fixed(Round::new(max_number + 1, id));
                self.retry_query(request, next);
            }
        }
    }

    fn enter_vote_phase(&mut self, request: RequestId, round: Round, proposed: C) {
        // The local acceptor votes first.
        let local = self.acceptor.vote_local(round, &proposed);
        let mut acks = self.alloc_ack_set();
        if matches!(local, AcceptOutcome::Ack { .. }) {
            acks.insert(self.id);
        }
        let done = acks.len() >= self.quorum_size;
        let previous = {
            let Some(InFlight::Query { phase, round_trips, .. }) = self.requests.get_mut(&request)
            else {
                self.recycle_ack_set(&mut acks);
                return;
            };
            *round_trips += 1;
            std::mem::replace(phase, QueryPhase::Vote { round, proposed: proposed.clone(), acks })
        };
        // The first-phase acknowledgement buffer is done; recycle it.
        if let QueryPhase::Prepare { mut acks, .. } = previous {
            self.recycle_prepare_acks(&mut acks);
        }
        if done {
            self.broadcast_vote(request, round, proposed.clone());
            self.finish_query(request, proposed, true);
        } else {
            self.broadcast_vote(request, round, proposed);
        }
    }

    fn handle_vote_ack(&mut self, from: ReplicaId, request: RequestId) {
        let track = self.config.payload_mode == PayloadMode::DeltaWhenPossible;
        let learned = match self.requests.get_mut(&request) {
            Some(InFlight::Query { phase: QueryPhase::Vote { acks, proposed, .. }, .. }) => {
                acks.insert(from);
                // A VOTED proves the peer joined the proposed state (line 44).
                if track && from != self.id {
                    Self::note_peer(&mut self.peer_known, from, proposed);
                }
                if acks.len() >= self.quorum_size {
                    Some(proposed.clone())
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(state) = learned {
            self.finish_query(request, state, true);
        }
    }

    fn handle_nack(&mut self, request: RequestId, _round: Round, state: C) {
        self.metrics.nacks_received += 1;
        let retry = match self.requests.get_mut(&request) {
            Some(InFlight::Query { gathered, .. }) => {
                gathered.join(&state);
                true
            }
            // Updates never receive NACKs (merges are unconditional); ignore strays.
            _ => false,
        };
        if retry {
            let next = if self.config.retry_with_incremental_prepare {
                PrepareRound::Incremental { id: self.new_round_id() }
            } else {
                let number = self.acceptor.round().number + 1;
                PrepareRound::Fixed(Round::new(number, self.new_round_id()))
            };
            self.retry_query(request, next);
        }
    }

    /// Restarts the query protocol for `request` under a fresh request id so replies
    /// to the abandoned attempt are ignored.
    fn retry_query(&mut self, request: RequestId, round: PrepareRound) {
        let Some(entry) = self.remove_request(request) else { return };
        let InFlight::Query { waiters, gathered, round_trips, retries, .. } = entry else {
            return;
        };
        if self.config.max_query_retries > 0 && retries + 1 > self.config.max_query_retries {
            for waiter in waiters {
                self.metrics.queries_failed += 1;
                self.respond(waiter.client, waiter.command, ResponseBody::QueryFailed, round_trips);
            }
            return;
        }
        let new_request = self.alloc_request();
        self.requests.insert(
            new_request,
            InFlight::Query {
                waiters,
                phase: QueryPhase::Prepare {
                    round,
                    sent_state: None,
                    acks: PrepareAcks::default(),
                },
                gathered,
                echoes: Vec::new(),
                round_trips,
                retries: retries + 1,
                last_sent_ms: self.now_ms,
            },
        );
        // Retries always ship full payloads: after a NACK or an inconsistent quorum
        // the proposer's picture of the peers may be stale, and a full state is the
        // robust way to re-establish common ground.
        self.begin_prepare(new_request, round, false);
    }

    /// Completes a query: applies GLA-Stability if configured, evaluates every
    /// waiter's query function on the learned state, and records metrics.
    fn finish_query(&mut self, request: RequestId, learned: C, by_vote: bool) {
        let Some(InFlight::Query { waiters, round_trips, .. }) = self.remove_request(request)
        else {
            return;
        };
        let state = if self.config.gla_stability {
            match &self.largest_learned {
                // Consistency guarantees comparability; keep the larger state.
                Some(previous) if learned.leq(previous) => previous.clone(),
                _ => learned,
            }
        } else {
            learned
        };
        self.largest_learned = Some(match self.largest_learned.take() {
            Some(previous) if state.leq(&previous) => previous,
            _ => state.clone(),
        });
        for waiter in waiters {
            let output = state.query(&waiter.query);
            self.metrics.record_query(round_trips, by_vote);
            self.respond(
                waiter.client,
                waiter.command,
                ResponseBody::QueryDone(output),
                round_trips,
            );
        }
    }

    fn flush_batches(&mut self) {
        if !self.update_batch.is_empty() {
            let batch = std::mem::take(&mut self.update_batch);
            self.start_update(batch);
        }
        if !self.query_batch.is_empty() {
            let batch = std::mem::take(&mut self.query_batch);
            self.start_query(batch);
        }
    }

    /// Re-sends the messages of requests that have not progressed for a while.
    ///
    /// Only replicas that have not answered yet are contacted again; this covers lost
    /// messages and crashed-and-recovered acceptors. Retransmissions always carry
    /// the full payload state, never a delta: a peer that went silent is exactly the
    /// peer whose state this proposer should not make assumptions about.
    fn retransmit_stalled(&mut self) {
        if self.config.retransmit_after_ms == 0 {
            return;
        }
        let deadline = self.now_ms.saturating_sub(self.config.retransmit_after_ms);
        let mut to_send: Vec<Envelope<C>> = Vec::new();
        let my_id = self.id;
        let peers = &self.others;
        for (&request, entry) in self.requests.iter_mut() {
            match entry {
                InFlight::Update { merged_state, acks, last_sent_ms, .. } => {
                    if *last_sent_ms > deadline {
                        continue;
                    }
                    *last_sent_ms = self.now_ms;
                    for &peer in peers.iter().filter(|p| !acks.contains(p)) {
                        to_send.push(Envelope {
                            from: my_id,
                            to: peer,
                            message: Message::Merge {
                                request,
                                payload: Payload::Full(merged_state.clone()),
                            },
                        });
                    }
                }
                InFlight::Query { phase, last_sent_ms, .. } => {
                    if *last_sent_ms > deadline {
                        continue;
                    }
                    *last_sent_ms = self.now_ms;
                    match phase {
                        QueryPhase::Prepare { round, sent_state, acks } => {
                            for &peer in peers.iter().filter(|p| !acks.contains(p)) {
                                to_send.push(Envelope {
                                    from: my_id,
                                    to: peer,
                                    message: Message::Prepare {
                                        request,
                                        round: *round,
                                        payload: sent_state.clone().map(Payload::Full),
                                        basis: 0,
                                    },
                                });
                            }
                        }
                        QueryPhase::Vote { round, proposed, acks } => {
                            for &peer in peers.iter().filter(|p| !acks.contains(p)) {
                                to_send.push(Envelope {
                                    from: my_id,
                                    to: peer,
                                    message: Message::Vote {
                                        request,
                                        round: *round,
                                        payload: Payload::Full(proposed.clone()),
                                        basis: 0,
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        self.outbox.extend(to_send);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt::{CounterQuery, CounterUpdate, GCounter};

    type Counter = GCounter;

    fn ids(n: u64) -> Vec<ReplicaId> {
        (0..n).map(ReplicaId::new).collect()
    }

    fn cluster(n: u64, config: ProtocolConfig) -> Vec<Replica<Counter>> {
        ids(n)
            .iter()
            .map(|&id| Replica::new(id, ids(n), Counter::default(), config.clone()))
            .collect()
    }

    /// Delivers every outstanding message until the cluster is quiescent.
    fn run_to_quiescence(replicas: &mut [Replica<Counter>]) {
        loop {
            let mut envelopes = Vec::new();
            for replica in replicas.iter_mut() {
                envelopes.extend(replica.take_outbox());
            }
            if envelopes.is_empty() {
                break;
            }
            for env in envelopes {
                let index = replicas.iter().position(|r| r.id() == env.to).expect("known replica");
                replicas[index].handle_message(env.from, env.message);
            }
        }
    }

    fn drain_responses(replica: &mut Replica<Counter>) -> Vec<ClientResponse<Counter>> {
        replica.take_responses()
    }

    #[test]
    fn update_completes_in_a_single_round_trip() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(1), CounterUpdate::Increment(5));
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.len(), 1);
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
        assert_eq!(responses[0].round_trips, 1);
        assert_eq!(replicas[0].metrics().updates_completed, 1);
        // All replicas eventually hold the update.
        for replica in &replicas {
            assert_eq!(replica.local_state().value(), 5);
        }
    }

    #[test]
    fn query_after_update_sees_the_update() {
        // Update Visibility (Theorem 3.10): a query submitted after an update
        // completed must observe it — even when submitted at a different replica.
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(1), CounterUpdate::Increment(3));
        run_to_quiescence(&mut replicas);
        drain_responses(&mut replicas[0]);

        replicas[2].submit_query(ClientId(2), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[2]);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].body, ResponseBody::QueryDone(3));
    }

    #[test]
    fn quiet_read_uses_a_single_round_trip_consistent_quorum() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(1), CounterUpdate::Increment(1));
        run_to_quiescence(&mut replicas);
        drain_responses(&mut replicas[0]);

        replicas[1].submit_query(ClientId(2), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[1]);
        assert_eq!(responses[0].round_trips, 1, "quiet reads finish in one round trip");
        assert_eq!(replicas[1].metrics().queries_consistent_quorum, 1);
        assert_eq!(replicas[1].metrics().queries_by_vote, 0);
    }

    #[test]
    fn read_concurrent_with_update_needs_a_vote_or_retry_but_stays_correct() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        // Submit the update but do NOT deliver its merge messages yet.
        replicas[0].submit_update(ClientId(1), CounterUpdate::Increment(1));
        let pending_merges = replicas[0].take_outbox();

        // Deliver the merge to replica 1 only: acceptor states now diverge.
        for env in pending_merges {
            if env.to == ReplicaId::new(1) {
                let (from, msg) = (env.from, env.message);
                replicas[1].handle_message(from, msg);
            }
        }
        // Drop replica 1's ack; the update stays in flight. Now run a query at r2.
        replicas[1].take_outbox();
        replicas[2].submit_query(ClientId(2), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[2]);
        assert_eq!(responses.len(), 1);
        match &responses[0].body {
            ResponseBody::QueryDone(value) => {
                assert!(*value == 0 || *value == 1, "linearizable value before ack");
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert!(responses[0].round_trips >= 2, "divergent states require the vote phase");
    }

    #[test]
    fn reads_never_go_backwards_across_replicas() {
        // Stability (Theorem 3.5) on the counter: subsequent reads observe
        // non-decreasing values even when issued at different replicas.
        let mut replicas = cluster(3, ProtocolConfig::default());
        let mut last = 0i64;
        for step in 0..5u64 {
            replicas[(step % 3) as usize].submit_update(ClientId(9), CounterUpdate::Increment(1));
            run_to_quiescence(&mut replicas);
            drain_responses(&mut replicas[(step % 3) as usize]);

            let reader = ((step + 1) % 3) as usize;
            replicas[reader].submit_query(ClientId(10), CounterQuery::Value);
            run_to_quiescence(&mut replicas);
            let responses = drain_responses(&mut replicas[reader]);
            match responses[0].body {
                ResponseBody::QueryDone(value) => {
                    assert!(value >= last, "read {value} went backwards from {last}");
                    last = value;
                }
                _ => panic!("expected query response"),
            }
        }
        assert_eq!(last, 5);
    }

    #[test]
    fn single_replica_cluster_answers_immediately() {
        let mut replicas = cluster(1, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(2));
        replicas[0].submit_query(ClientId(0), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.len(), 2);
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
        assert_eq!(responses[1].body, ResponseBody::QueryDone(2));
    }

    #[test]
    fn batching_combines_multiple_commands_into_one_protocol_instance() {
        let mut replicas = cluster(3, ProtocolConfig::batched());
        for i in 0..10 {
            replicas[0].submit_update(ClientId(i), CounterUpdate::Increment(1));
            replicas[0].submit_query(ClientId(i), CounterQuery::Value);
        }
        // Nothing happens until the batch interval elapses.
        assert_eq!(replicas[0].take_outbox().len(), 0);
        replicas[0].tick(5);
        assert!(replicas[0].in_flight() <= 2, "one update batch and one query batch");
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.len(), 20);
        let updates =
            responses.iter().filter(|r| matches!(r.body, ResponseBody::UpdateDone)).count();
        assert_eq!(updates, 10);
        // All queries in the batch see all updates of the batch (applied locally first).
        for response in responses.iter().filter(|r| matches!(r.body, ResponseBody::QueryDone(_))) {
            assert_eq!(response.body, ResponseBody::QueryDone(10));
        }
        assert_eq!(replicas[0].metrics().updates_completed, 10);
        assert_eq!(replicas[0].metrics().queries_completed, 10);
    }

    #[test]
    fn gla_stability_never_returns_a_smaller_state_at_the_same_proposer() {
        let config = ProtocolConfig { gla_stability: true, ..ProtocolConfig::default() };
        let mut replicas = cluster(3, config);

        // Learn a large state first.
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(10));
        run_to_quiescence(&mut replicas);
        replicas[0].submit_query(ClientId(0), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        drain_responses(&mut replicas[0]);

        // Later reads at the same proposer can never observe less.
        replicas[0].submit_query(ClientId(0), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.last().unwrap().body, ResponseBody::QueryDone(10));
    }

    #[test]
    fn retransmission_recovers_from_lost_merge_messages() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(1), CounterUpdate::Increment(1));
        // Drop every outgoing merge (simulated message loss).
        let lost = replicas[0].take_outbox();
        assert_eq!(lost.len(), 2);
        assert!(drain_responses(&mut replicas[0]).is_empty());

        // After the retransmit interval the replica re-sends and completes.
        replicas[0].tick(200);
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.len(), 1);
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
    }

    #[test]
    fn crashed_minority_does_not_block_progress() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        // Replica 2 "crashes": we simply never deliver messages to it.
        replicas[0].submit_update(ClientId(1), CounterUpdate::Increment(4));
        loop {
            let mut envelopes = Vec::new();
            for replica in replicas.iter_mut() {
                envelopes.extend(replica.take_outbox());
            }
            if envelopes.is_empty() {
                break;
            }
            for env in envelopes {
                if env.to == ReplicaId::new(2) {
                    continue; // crashed
                }
                let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
                replicas[index].handle_message(env.from, env.message);
            }
        }
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.len(), 1, "a two-replica quorum suffices");

        // Queries also succeed with only two live replicas.
        replicas[1].submit_query(ClientId(2), CounterQuery::Value);
        loop {
            let mut envelopes = Vec::new();
            for replica in replicas.iter_mut() {
                envelopes.extend(replica.take_outbox());
            }
            if envelopes.is_empty() {
                break;
            }
            for env in envelopes {
                if env.to == ReplicaId::new(2) {
                    continue;
                }
                let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
                replicas[index].handle_message(env.from, env.message);
            }
        }
        let responses = drain_responses(&mut replicas[1]);
        assert_eq!(responses[0].body, ResponseBody::QueryDone(4));
    }

    #[test]
    fn metrics_track_learning_paths() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        run_to_quiescence(&mut replicas);
        replicas[0].submit_query(ClientId(0), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        let metrics = replicas[0].metrics();
        assert_eq!(metrics.updates_completed, 1);
        assert_eq!(metrics.queries_completed, 1);
        assert_eq!(metrics.queries_consistent_quorum + metrics.queries_by_vote, 1);
        assert!(metrics.query_fraction_within(2) >= 1.0 - f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "must be part of the membership")]
    fn replica_must_belong_to_membership() {
        let _ = Replica::<Counter>::new(
            ReplicaId::new(9),
            ids(3),
            Counter::default(),
            ProtocolConfig::default(),
        );
    }

    #[test]
    fn full_mode_never_tracks_peer_states() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        run_to_quiescence(&mut replicas);
        assert!(replicas[0].known_peer_state(ReplicaId::new(1)).is_none());
        assert!(replicas[0].known_peer_state(ReplicaId::new(2)).is_none());
    }

    #[test]
    fn delta_mode_sends_full_on_first_contact_then_deltas() {
        let config = ProtocolConfig::default().with_delta_payloads();
        let mut replicas = cluster(3, config);

        // First contact: nothing is known about the peers, the MERGE ships full.
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        let first = replicas[0].take_outbox();
        assert!(first
            .iter()
            .all(|env| matches!(&env.message, Message::Merge { payload: Payload::Full(_), .. })));
        for env in first {
            let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
            replicas[index].handle_message(env.from, env.message);
        }
        run_to_quiescence(&mut replicas);
        drain_responses(&mut replicas[0]);

        // The MERGED replies taught the proposer what the peers hold.
        let known = replicas[0].known_peer_state(ReplicaId::new(1)).expect("peer tracked");
        assert_eq!(known.value(), 1);

        // Second update: the peers are known to contain the pre-state, so the MERGE
        // ships a single-slot delta instead of the full counter.
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        let second = replicas[0].take_outbox();
        for env in &second {
            match &env.message {
                Message::Merge { payload: Payload::Delta(delta), .. } => {
                    assert_eq!(delta.contributors(), 1, "delta carries one slot");
                }
                other => panic!("expected delta merge, got {other:?}"),
            }
        }
        for env in second {
            let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
            replicas[index].handle_message(env.from, env.message);
        }
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[0]);
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
        for replica in &replicas {
            assert_eq!(replica.local_state().value(), 2, "deltas converge like full states");
        }
    }

    #[test]
    fn delta_mode_retransmissions_fall_back_to_full_payloads() {
        let config = ProtocolConfig::default().with_delta_payloads();
        let mut replicas = cluster(3, config);

        // Establish peer knowledge with a completed round.
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        run_to_quiescence(&mut replicas);
        drain_responses(&mut replicas[0]);

        // Lose every merge of the next update, then let the retransmit timer fire.
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        let lost = replicas[0].take_outbox();
        assert!(lost.iter().all(|env| env.message.payload().unwrap().is_delta()));
        replicas[0].tick(200);
        let resent = replicas[0].take_outbox();
        assert!(!resent.is_empty());
        assert!(
            resent.iter().all(|env| matches!(
                &env.message,
                Message::Merge { payload: Payload::Full(_), .. }
            )),
            "retransmissions must not assume anything about the silent peer"
        );
        for env in resent {
            let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
            replicas[index].handle_message(env.from, env.message);
        }
        run_to_quiescence(&mut replicas);
        assert!(matches!(drain_responses(&mut replicas[0])[0].body, ResponseBody::UpdateDone));
    }

    #[test]
    fn full_mode_replies_ship_full_states() {
        // Paper-faithful mode: ACK replies carry the acceptor's full state.
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        run_to_quiescence(&mut replicas);
        replicas[0].submit_query(ClientId(0), CounterQuery::Value);
        let prepares = replicas[0].take_outbox();
        let mut acks = Vec::new();
        for env in prepares {
            let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
            replicas[index].handle_message(env.from, env.message);
            acks.extend(replicas[index].take_outbox());
        }
        assert!(!acks.is_empty());
        for env in &acks {
            match &env.message {
                Message::PrepareAck { state: Payload::Full(_), .. } => {}
                other => panic!("expected full ACK, got {other:?}"),
            }
        }
    }

    #[test]
    fn delta_mode_ack_replies_are_delta_encoded() {
        // The first read's ACKs reveal each acceptor's state and establish the basis
        // snapshots; from the second read on, a quiet read's ACK ships an *empty*
        // delta (the acceptor state equals the echoed snapshot joined with the
        // prepare's content) — and reads still complete with the correct value.
        let config = ProtocolConfig::default().with_delta_payloads();
        let mut replicas = cluster(3, config);
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(7));
        run_to_quiescence(&mut replicas);
        replicas[0].submit_query(ClientId(0), CounterQuery::Value);
        run_to_quiescence(&mut replicas);
        drain_responses(&mut replicas[0]);

        replicas[0].submit_query(ClientId(0), CounterQuery::Value);
        let prepares = replicas[0].take_outbox();
        assert!(prepares.iter().all(|env| matches!(
            &env.message,
            Message::Prepare { basis, .. } if *basis != 0
        )));
        let mut acks = Vec::new();
        for env in prepares {
            let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
            replicas[index].handle_message(env.from, env.message);
            acks.extend(replicas[index].take_outbox());
        }
        assert!(!acks.is_empty());
        for env in &acks {
            match &env.message {
                Message::PrepareAck { state: Payload::Delta(delta), .. } => {
                    assert_eq!(delta.contributors(), 0, "quiet-read ACK delta is empty");
                }
                other => panic!("expected delta ACK, got {other:?}"),
            }
        }
        for env in acks {
            let index = replicas.iter().position(|r| r.id() == env.to).unwrap();
            replicas[index].handle_message(env.from, env.message);
        }
        run_to_quiescence(&mut replicas);
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses[0].body, ResponseBody::QueryDone(7));
        assert_eq!(responses[0].round_trips, 1);
    }

    #[test]
    fn membership_change_garbage_collects_peer_state_tracking() {
        let config = ProtocolConfig::default().with_delta_payloads();
        let mut replicas = cluster(3, config);
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        run_to_quiescence(&mut replicas);
        assert!(replicas[0].known_peer_state(ReplicaId::new(1)).is_some());
        assert!(replicas[0].known_peer_state(ReplicaId::new(2)).is_some());

        // Replica 2 is decommissioned: its tracked state clone must be dropped.
        replicas[0].update_membership(vec![ReplicaId::new(0), ReplicaId::new(1)]);
        assert!(replicas[0].known_peer_state(ReplicaId::new(1)).is_some());
        assert!(replicas[0].known_peer_state(ReplicaId::new(2)).is_none());
        assert_eq!(replicas[0].membership().len(), 2);
    }

    #[test]
    fn membership_shrink_completes_pending_instances() {
        // An update waiting for a 3-of-5 quorum completes when the group shrinks to
        // a size its current acknowledgements already cover.
        let mut replicas = cluster(5, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        let merges = replicas[0].take_outbox();
        // Deliver the merge to replica 1 only and return its ack.
        for env in merges {
            if env.to == ReplicaId::new(1) {
                replicas[1].handle_message(env.from, env.message);
            }
        }
        let acks = replicas[1].take_outbox();
        for env in acks {
            replicas[0].handle_message(env.from, env.message);
        }
        // 2 of 5 acks: not yet a quorum, no response.
        assert!(drain_responses(&mut replicas[0]).is_empty());
        assert_eq!(replicas[0].in_flight(), 1);

        // Shrink to {0, 1, 2}: the 2 acks now form a majority.
        let members = vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)];
        replicas[0].update_membership(members);
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.len(), 1);
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
        assert_eq!(replicas[0].in_flight(), 0);
    }

    #[test]
    fn membership_shrink_discards_acks_of_departed_peers() {
        // An update acked only by {0, 4} in a 5-group must NOT complete when the
        // group shrinks to {0, 1, 2} with quorum 2: replica 4's ack is void (of
        // the new members, only replica 0 stores the state — a read served by
        // {1, 2} would miss the "completed" update). Late acks from departed
        // peers must not resurrect it either.
        let mut replicas = cluster(5, ProtocolConfig::default());
        replicas[0].submit_update(ClientId(0), CounterUpdate::Increment(1));
        let merges = replicas[0].take_outbox();
        for env in merges {
            if env.to == ReplicaId::new(4) {
                replicas[4].handle_message(env.from, env.message);
            }
        }
        let acks = replicas[4].take_outbox();
        let late_ack = acks[0].clone();
        for env in acks {
            replicas[0].handle_message(env.from, env.message);
        }
        assert!(drain_responses(&mut replicas[0]).is_empty(), "2 of 5 is not a quorum");

        let members = vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)];
        replicas[0].update_membership(members);
        assert!(
            drain_responses(&mut replicas[0]).is_empty(),
            "the departed peer's ack must not count toward the new quorum"
        );
        assert_eq!(replicas[0].in_flight(), 1);

        // A replayed ack from the departed peer is dropped entirely.
        replicas[0].handle_message(late_ack.from, late_ack.message);
        assert!(drain_responses(&mut replicas[0]).is_empty());

        // The update completes once a *current* member acknowledges (retransmit).
        replicas[0].tick(200);
        let resent = replicas[0].take_outbox();
        for env in resent {
            if env.to == ReplicaId::new(1) {
                replicas[1].handle_message(env.from, env.message);
            }
        }
        for env in replicas[1].take_outbox() {
            if env.to == ReplicaId::new(0) {
                replicas[0].handle_message(env.from, env.message);
            }
        }
        let responses = drain_responses(&mut replicas[0]);
        assert_eq!(responses.len(), 1, "a current-member quorum completes the update");
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
    }

    #[test]
    #[should_panic(expected = "must be part of the new membership")]
    fn membership_change_must_keep_self() {
        let mut replicas = cluster(3, ProtocolConfig::default());
        replicas[0].update_membership(vec![ReplicaId::new(1), ReplicaId::new(2)]);
    }

    #[test]
    fn delta_mode_matches_full_mode_results() {
        // The payload representation must not change the protocol's observable
        // behaviour: same updates, same learned values, same final states.
        let mut full = cluster(3, ProtocolConfig::default());
        let mut delta = cluster(3, ProtocolConfig::default().with_delta_payloads());
        for replicas in [&mut full, &mut delta] {
            for step in 0..6u64 {
                let writer = (step % 3) as usize;
                replicas[writer].submit_update(ClientId(0), CounterUpdate::Increment(step + 1));
                run_to_quiescence(replicas);
                let reader = ((step + 1) % 3) as usize;
                replicas[reader].submit_query(ClientId(1), CounterQuery::Value);
                run_to_quiescence(replicas);
            }
        }
        for index in 0..3 {
            assert_eq!(full[index].local_state(), delta[index].local_state());
            let full_reads: Vec<_> = drain_responses(&mut full[index])
                .into_iter()
                .map(|response| response.body)
                .collect();
            let delta_reads: Vec<_> = drain_responses(&mut delta[index])
                .into_iter()
                .map(|response| response.body)
                .collect();
            assert_eq!(full_reads, delta_reads);
        }
    }
}
