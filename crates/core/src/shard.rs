//! Sharded keyspace: one independent protocol instance per key range, with
//! epoch-stamped dynamic resharding.
//!
//! The paper's fine-granularity argument (§1) is that linearizable CRDT access is
//! most useful *per key*, not per database: commands on different keys do not
//! conflict, so serializing a whole keyspace through a single round counter (one
//! [`Replica<LatticeMap>`] replicating the entire map) wastes the protocol's
//! leaderless parallelism. Generalized lattice agreement (Faleiro et al., PODC'12)
//! makes the finer granularity safe: per-key linearizability needs no ordering
//! *across* keys, so disjoint key ranges may run entirely independent protocol
//! instances.
//!
//! [`ShardedReplica`] is the single-threaded router over that idea. Each shard
//! is a [`ShardCore`](crate::ShardCore) — an independent
//! [`Replica<LatticeMap<K, V>>`] with its own acceptor state, round counter,
//! in-flight quorums, and batching timers, packaged as a pure sans-io state
//! machine — and the router directs every submitted key to its owner through a
//! deterministic [`Partitioner`]. Outgoing traffic is multiplexed behind
//! [`ShardEnvelope`]/[`ShardMessage`] (the inner protocol message tagged with
//! its [`ShardId`] and the sender's partitioning **epoch**), so a single
//! transport connection per peer carries all shards while quorums on different
//! shards advance concurrently: an update on shard 0 never waits behind a
//! contended read quorum on shard 3. The same cores, behind the same wire
//! format, are alternatively executed one-OS-thread-per-shard by the `engine`
//! crate — this router is the deterministic (simulator- and test-friendly)
//! driver, the engine is the parallel one.
//!
//! # Dynamic resharding
//!
//! The key→shard assignment is no longer fixed at construction: the partitioner is
//! wrapped in an [`EpochPartitioner`] and a committed [`RebalancePlan`] moves the
//! keyspace to a new assignment while traffic continues (see [`crate::rebalance`]
//! for the full protocol). The log-less design makes the handoff a pure lattice
//! join — a moved key range is grafted into its destination instance's acceptor by
//! [`Replica::absorb_state`], with no log truncation, snapshotting, or replay:
//!
//! * a plan is agreed through the existing protocol on a dedicated **control
//!   shard** ([`ShardMessage::Control`] traffic) and then gossiped as
//!   [`ShardMessage::Rebalance`];
//! * installing a plan copies moving sub-states into their destinations, cancels
//!   in-flight commands and re-homes them on their new owner (applied updates via
//!   [`Replica::submit_resync`], everything else by resubmission), and submits a
//!   resync per destination so handed-off ranges become quorum-durable;
//! * from then on the **epoch fence** keeps routing unambiguous: protocol messages
//!   stamped with an older epoch are answered with the plan instead of being
//!   processed, and messages from newer epochs are deferred until the plan arrives.
//!
//! Per-key linearizability holds across the transition by quorum intersection: an
//! update committed at the old epoch was joined by a quorum of source-shard
//! acceptors before each of them fenced, so the same quorum's handoff copies carry
//! it into the destination shard, where every new-epoch read quorum intersects it.
//!
//! Keyspace-wide queries ([`MapQuery::Len`], [`MapQuery::Keys`]) fan out to every
//! shard and aggregate the per-shard answers, counting every key exactly once (a
//! shard's answer is filtered to the keys it currently owns, because handed-off
//! ranges deliberately leave stale lower-bound copies behind at the source); each
//! per-shard answer is individually linearizable, the aggregate is not a keyspace
//! snapshot (exactly the trade the paper's per-key granularity makes).

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

use crdt::{
    Crdt, DeltaCrdt, GSetUpdate, Lattice, LatticeMap, MapOutput, MapQuery, MapUpdate, ReplicaId,
    SetOutput, SetQuery,
};
use quorum::{EpochPartitioner, HashPartitioner, Membership, Partitioner, ShardId};
use serde::{Deserialize, Serialize};

use crate::config::ProtocolConfig;
use crate::metrics::{Metrics, WireMetrics};
use crate::msg::{ClientId, ClientResponse, Command, CommandId, Envelope, Message, ResponseBody};
use crate::rebalance::{
    winning_shards, ControlState, PlanPartitioner, RebalancePlan, RebalanceStats,
};
use crate::replica::Replica;
use crate::shard_core::{fence_decision, FenceDecision, ShardCore, ShardOutput, Stamp};

/// What peers exchange in a sharded deployment: ordinary protocol traffic tagged
/// with its shard and partitioning epoch, control-shard traffic, or a rebalance
/// plan. The `wire` codec encodes the variant tag and the small integer fields as
/// single-byte varints in front of the inner message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C: Serialize, C::Delta: Serialize",
    deserialize = "C: Deserialize<'de>, C::Delta: Deserialize<'de>"
))]
pub enum ShardMessage<C: Crdt + DeltaCrdt> {
    /// Protocol traffic of one data shard, stamped with the sender's epoch.
    ///
    /// The `(epoch, shards)` stamp names the sender's exact assignment and is what
    /// makes routing unambiguous during a rebalance: a receiver on a newer stamp
    /// answers with [`ShardMessage::Rebalance`] instead of processing the message
    /// (its data may belong to a moved key range), and a receiver on an older
    /// stamp defers the message until it has installed the plan itself. The stamp
    /// carries the shard count and not just the epoch because racing coordinators
    /// may transiently install *different* assignments under the same epoch
    /// (resolved by the larger-shard-count plan superseding, mirroring
    /// [`winning_shards`]); comparing full stamps keeps the fence airtight during
    /// that window — mixed-assignment quorums can never form.
    Protocol {
        /// The sender's partitioning epoch.
        epoch: u64,
        /// The shard count of the sender's assignment at that epoch.
        shards: u32,
        /// The protocol instance this message belongs to.
        shard: ShardId,
        /// The inner protocol message.
        message: Message<C>,
    },
    /// Traffic of the control shard, the protocol instance on which rebalance
    /// plans are agreed (see [`ControlState`]). Never epoch-fenced: the control
    /// shard is the meta layer the epochs come from.
    Control {
        /// The inner control-shard protocol message.
        message: Message<ControlState>,
    },
    /// A committed rebalance plan: gossiped once per installed epoch, and sent as
    /// the reply to old-epoch [`ShardMessage::Protocol`] traffic (the epoch
    /// bounce) and to [`ShardMessage::PlanRequest`]s. Installation is idempotent,
    /// so duplicates are harmless.
    Rebalance {
        /// The plan to install.
        plan: RebalancePlan,
    },
    /// "Send me your current rebalance plan."
    ///
    /// Emitted when future-stamp traffic is deferred: the sender of that traffic
    /// provably holds a plan this replica has not installed, and the one-shot
    /// gossip that should have delivered it may have been lost. Without this,
    /// a replica with no old-stamp traffic of its own (nothing to get bounced
    /// on) could stay behind indefinitely while its deferral buffer overflows.
    PlanRequest,
}

/// An addressed [`ShardMessage`]: the sharded counterpart of [`Envelope`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C: Serialize, C::Delta: Serialize",
    deserialize = "C: Deserialize<'de>, C::Delta: Deserialize<'de>"
))]
pub struct ShardEnvelope<C: Crdt + DeltaCrdt> {
    /// Sending replica.
    pub from: ReplicaId,
    /// Receiving replica.
    pub to: ReplicaId,
    /// The shard-multiplexed message.
    pub message: ShardMessage<C>,
}

impl<C: Crdt + DeltaCrdt> ShardEnvelope<C> {
    /// Splits the envelope into its destination and the transferable message.
    pub fn into_parts(self) -> (ReplicaId, ShardMessage<C>) {
        (self.to, self.message)
    }
}

/// A protocol message held back because it is stamped with a future assignment:
/// `(sender, stamp, shard, message)`.
type Deferred<K, V> = (ReplicaId, Stamp, ShardId, Message<LatticeMap<K, V>>);

/// A client command being re-homed during a plan install:
/// `(client, outer command id, re-submittable command)`.
type Rehomed<K, V> = (ClientId, CommandId, Command<LatticeMap<K, V>>);

/// Partial aggregate of a keyspace-wide query.
#[derive(Debug)]
enum FanoutAcc<K> {
    Len(u64),
    Keys(Vec<K>),
}

/// An in-flight keyspace-wide query, waiting for every shard's answer.
#[derive(Debug)]
struct Fanout<K> {
    client: ClientId,
    remaining: usize,
    /// Worst round-trip count over the per-shard legs (the legs run in parallel,
    /// so the slowest leg is the fan-out's latency).
    round_trips: u32,
    failed: bool,
    acc: FanoutAcc<K>,
}

/// Coordinator-side choreography of an initiated rebalance: commit the proposal on
/// the control shard, then read back the agreed winner, then install and gossip.
#[derive(Debug, Clone, Copy)]
enum ControlPhase {
    /// Waiting for the shard-count proposal to commit.
    Committing { command: CommandId, epoch: u64 },
    /// Waiting for the linearizable read of the agreed proposals.
    Reading { command: CommandId, epoch: u64 },
}

/// A replicated keyspace partitioned over independent protocol instances, with
/// epoch-stamped dynamic resharding.
///
/// One `ShardedReplica` is one *process* of the cluster: it holds this replica's
/// acceptor+proposer pair for **every** shard (plus the control shard) and routes
/// between them. Drive it exactly like a [`Replica`] — [`ShardedReplica::submit`],
/// [`ShardedReplica::handle_message`], [`ShardedReplica::tick`], then drain
/// [`ShardedReplica::take_outbox`] / [`ShardedReplica::take_responses`]. Trigger a
/// live resharding with [`ShardedReplica::begin_rebalance`].
///
/// # Example
///
/// ```
/// use crdt::{CounterUpdate, GCounter, ReplicaId};
/// use crdt_paxos_core::{ClientId, ProtocolConfig, ResponseBody, ShardedReplica};
///
/// let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
/// let mut nodes: Vec<ShardedReplica<String, GCounter>> = ids
///     .iter()
///     .map(|&id| ShardedReplica::new(id, ids.clone(), 4, ProtocolConfig::default()))
///     .collect();
///
/// // Updates on different keys run on independent protocol instances.
/// nodes[0].submit_update(ClientId(0), "clicks".to_string(), CounterUpdate::Increment(2));
/// nodes[1].submit_update(ClientId(1), "views".to_string(), CounterUpdate::Increment(5));
///
/// // Deliver all produced messages until quiescence.
/// loop {
///     let mut envelopes = Vec::new();
///     for node in &mut nodes {
///         envelopes.extend(node.take_outbox());
///     }
///     if envelopes.is_empty() {
///         break;
///     }
///     for envelope in envelopes {
///         let from = envelope.from;
///         let (to, message) = envelope.into_parts();
///         nodes[to.as_u64() as usize].handle_message(from, message);
///     }
/// }
/// let responses = nodes[0].take_responses();
/// assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
/// ```
#[derive(Debug)]
pub struct ShardedReplica<K, V, P = HashPartitioner>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
    P: Partitioner<K>,
{
    id: ReplicaId,
    members: Vec<ReplicaId>,
    config: ProtocolConfig,
    partitioner: EpochPartitioner<P>,
    /// The last installed plan (`None` until the first rebalance); echoed to
    /// stragglers by the epoch fence.
    plan: Option<RebalancePlan>,
    /// Per-shard sans-IO cores, indexed by shard id. May exceed the active count
    /// after a shrinking rebalance: retired instances keep their (stale,
    /// lower-bound) states and are reactivated in place by a later growth.
    /// These are the same cores the thread-per-shard engine drives — this
    /// router is simply their single-threaded driver.
    shards: Vec<ShardCore<K, V>>,
    /// The control shard: plans are agreed here through the ordinary protocol.
    control: Replica<ControlState>,
    control_phase: Option<ControlPhase>,
    /// A rebalance target requested while another initiated here was still in
    /// flight; started as soon as the current choreography resolves (latest
    /// request wins).
    queued_target: Option<u32>,
    next_command: u64,
    fanouts: BTreeMap<CommandId, Fanout<K>>,
    responses: Vec<ClientResponse<LatticeMap<K, V>>>,
    /// Protocol messages from future epochs, buffered until their plan installs.
    deferred: Vec<Deferred<K, V>>,
    /// Bounce replies and plan gossip produced outside the per-core outboxes.
    extra: Vec<ShardEnvelope<LatticeMap<K, V>>>,
    /// Reused drain buffer for the per-core outputs (no per-cycle allocs).
    output_scratch: Vec<ShardOutput<K, V>>,
    /// Reused drain buffer for control-shard envelopes (no per-cycle allocs).
    control_scratch: Vec<Envelope<ControlState>>,
    stats: RebalanceStats,
}

impl<K, V> ShardedReplica<K, V, HashPartitioner>
where
    K: Ord + Clone + Hash + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
{
    /// Creates a sharded replica with `shards` hash-partitioned protocol instances
    /// at epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `members` does not contain `id`.
    pub fn new(
        id: ReplicaId,
        members: Vec<ReplicaId>,
        shards: u32,
        config: ProtocolConfig,
    ) -> Self {
        Self::with_partitioner(id, members, HashPartitioner::new(shards), config)
    }
}

impl<K, V, P> ShardedReplica<K, V, P>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
    P: Partitioner<K> + PlanPartitioner,
{
    /// How many future-epoch messages are buffered while a plan is in flight;
    /// overflow is dropped (the sender's retransmission recovers it).
    const DEFERRED_CAP: usize = 4096;

    /// Creates a sharded replica routing through the given partitioner (epoch 0).
    ///
    /// Every replica of the cluster must be constructed with an identical
    /// partitioner: routing a key to different shards on different replicas would
    /// split the key's history over unrelated protocol instances.
    ///
    /// # Panics
    ///
    /// Panics if the partitioner has zero shards or `members` does not contain `id`.
    pub fn with_partitioner(
        id: ReplicaId,
        members: Vec<ReplicaId>,
        partitioner: P,
        config: ProtocolConfig,
    ) -> Self {
        let shard_count = <P as Partitioner<K>>::shards(&partitioner);
        assert!(shard_count > 0, "a sharded replica needs at least one shard");
        let shards = (0..shard_count)
            .map(|shard| ShardCore::new(ShardId(shard), id, members.clone(), config.clone()))
            .collect();
        // The control shard never batches: plan agreement is rare, tiny, and
        // latency-sensitive (the whole cluster fences on its outcome).
        let control_config = ProtocolConfig { batching: false, ..config.clone() };
        let control = Replica::new(id, members.clone(), ControlState::default(), control_config);
        ShardedReplica {
            id,
            members,
            config,
            partitioner: EpochPartitioner::new(partitioner),
            plan: None,
            shards,
            control,
            control_phase: None,
            queued_target: None,
            next_command: 0,
            fanouts: BTreeMap::new(),
            responses: Vec::new(),
            deferred: Vec::new(),
            extra: Vec::new(),
            output_scratch: Vec::new(),
            control_scratch: Vec::new(),
            stats: RebalanceStats::default(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Number of **active** shards (independent protocol instances the current
    /// partitioning routes onto). See [`ShardedReplica::instance_count`] for the
    /// total including retired instances.
    pub fn shard_count(&self) -> u32 {
        <EpochPartitioner<P> as Partitioner<K>>::shards(&self.partitioner)
    }

    /// Total number of protocol instances held, including instances retired by a
    /// shrinking rebalance (kept as reactivatable lower bounds).
    pub fn instance_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The current partitioning epoch (0 until the first rebalance completes).
    pub fn epoch(&self) -> u64 {
        self.partitioner.epoch()
    }

    /// The last installed rebalance plan, if any.
    pub fn current_plan(&self) -> Option<RebalancePlan> {
        self.plan
    }

    /// Counters describing this replica's view of past and ongoing rebalances.
    pub fn rebalance_stats(&self) -> RebalanceStats {
        self.stats
    }

    /// Returns `true` while this replica is coordinating a rebalance it initiated
    /// (committing or reading back the plan on the control shard).
    pub fn rebalance_in_progress(&self) -> bool {
        self.control_phase.is_some()
    }

    /// The epoch-stamped partitioner routing keys to shards.
    pub fn partitioner(&self) -> &EpochPartitioner<P> {
        &self.partitioner
    }

    /// The shard owning `key` under the current epoch.
    pub fn shard_of(&self, key: &K) -> ShardId {
        self.partitioner.shard_of(key)
    }

    /// The replica group (identical across shards).
    pub fn membership(&self) -> &Membership<ReplicaId> {
        self.shards[0].replica().membership()
    }

    /// Read access to one shard's protocol instance (tests, observability).
    pub fn shard(&self, shard: ShardId) -> &Replica<LatticeMap<K, V>> {
        self.shards[shard.as_usize()].replica()
    }

    /// Iterates over all shard instances in shard order (including retired ones).
    pub fn shards(&self) -> impl Iterator<Item = &Replica<LatticeMap<K, V>>> {
        self.shards.iter().map(ShardCore::replica)
    }

    /// Total number of protocol instances currently in flight over all data
    /// shards (the control shard is excluded).
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(ShardCore::in_flight).sum()
    }

    /// Proposer metrics aggregated over all data shards.
    pub fn metrics(&self) -> Metrics {
        let mut total = Metrics::new();
        for shard in &self.shards {
            total.merge(shard.metrics());
        }
        total
    }

    /// Encoded bytes-on-the-wire per shard (only filled when the driver records
    /// sizes via [`ShardedReplica::record_wire_bytes`]).
    pub fn wire_metrics_by_shard(&self) -> Vec<(ShardId, WireMetrics)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| (ShardId(index as u32), shard.metrics().wire.clone()))
            .collect()
    }

    /// Records the encoded size of one outgoing message on its shard's metrics.
    pub fn record_wire_bytes(&mut self, shard: ShardId, kind: &'static str, bytes: u64) {
        self.shards[shard.as_usize()].record_wire_bytes(kind, bytes);
    }

    /// Records the encoded size of one outgoing control or rebalance message.
    pub fn record_control_wire_bytes(&mut self, kind: &'static str, bytes: u64) {
        self.control.record_wire_bytes(kind, bytes);
    }

    /// Encoded bytes-on-the-wire of control and rebalance traffic (filled by
    /// [`ShardedReplica::record_control_wire_bytes`]).
    pub fn control_wire_metrics(&self) -> WireMetrics {
        self.control.metrics().wire.clone()
    }

    /// The whole keyspace as one map: the join of every shard's local acceptor
    /// state (observability and tests; linearizable reads go through
    /// [`ShardedReplica::submit`]). Stale handoff leftovers are absorbed by the
    /// join, so this is invariant across a rebalance.
    pub fn merged_state(&self) -> LatticeMap<K, V> {
        let mut merged = LatticeMap::default();
        for shard in &self.shards {
            merged.join(shard.local_state());
        }
        merged
    }

    /// Number of active shards as a `usize` index bound.
    fn active(&self) -> usize {
        self.shard_count() as usize
    }

    /// This replica's current assignment stamp: `(epoch, active shard count)`.
    fn stamp(&self) -> Stamp {
        (self.partitioner.epoch(), self.shard_count())
    }

    /// The client id under which this replica submits control-shard commands.
    fn control_client(&self) -> ClientId {
        ClientId(self.id.as_u64())
    }

    /// Submits a client command, routing it to the owning shard (or fanning it out
    /// to all shards for keyspace-wide queries). Returns the id used to correlate
    /// the response.
    pub fn submit(&mut self, client: ClientId, command: Command<LatticeMap<K, V>>) -> CommandId {
        let outer = CommandId(self.next_command);
        self.next_command += 1;
        match command {
            single @ (Command::Update(MapUpdate::Apply { .. })
            | Command::Query(MapQuery::Get { .. })) => {
                self.submit_routed(client, outer, single);
            }
            Command::Query(query) => {
                // Keyspace-wide query: every shard answers for the keys it owns.
                let acc = match query {
                    MapQuery::Len => FanoutAcc::Len(0),
                    MapQuery::Keys => FanoutAcc::Keys(Vec::new()),
                    MapQuery::Get { .. } => unreachable!("routed above"),
                };
                self.fanouts.insert(
                    outer,
                    Fanout { client, remaining: 0, round_trips: 0, failed: false, acc },
                );
                self.launch_fanout_legs(outer, client);
            }
        }
        outer
    }

    /// Routes a single-key command to its owning shard and records the pending
    /// mapping (used for fresh submissions and for re-homing after a rebalance).
    /// Only the key is retained at this layer; a rebalance reclaims the command
    /// payload from the instance itself ([`Replica::cancel_in_flight`]).
    fn submit_routed(
        &mut self,
        client: ClientId,
        outer: CommandId,
        command: Command<LatticeMap<K, V>>,
    ) {
        let key = match &command {
            Command::Update(MapUpdate::Apply { key, .. })
            | Command::Query(MapQuery::Get { key, .. }) => key.clone(),
            Command::Query(_) => unreachable!("keyspace-wide queries are tracked as fan-outs"),
        };
        let owner = self.partitioner.shard_of(&key).as_usize();
        self.shards[owner].submit_single(client, outer, key, command);
    }

    /// Submits one `Keys` leg per active shard for the fan-out `outer` and resets
    /// its remaining-legs counter.
    ///
    /// Legs always ask for the shard's key list — even for `Len` — because the
    /// aggregate must filter each answer down to the keys the shard currently
    /// owns: handed-off ranges leave stale lower-bound copies at their source, and
    /// counting those would double-count moved keys.
    fn launch_fanout_legs(&mut self, outer: CommandId, client: ClientId) {
        let active = self.active();
        if let Some(fanout) = self.fanouts.get_mut(&outer) {
            fanout.remaining = active;
        }
        for index in 0..active {
            self.shards[index].submit_fanout_leg(client, outer);
        }
    }

    /// Convenience wrapper: apply a nested update to `key`.
    pub fn submit_update(&mut self, client: ClientId, key: K, update: V::Update) -> CommandId {
        self.submit(client, Command::Update(MapUpdate::Apply { key, update }))
    }

    /// Convenience wrapper: run a nested query against `key`.
    pub fn submit_query(&mut self, client: ClientId, key: K, query: V::Query) -> CommandId {
        self.submit(client, Command::Query(MapQuery::Get { key, query }))
    }

    /// Handles a shard-tagged message from another replica.
    pub fn handle_message(&mut self, from: ReplicaId, message: ShardMessage<LatticeMap<K, V>>) {
        match message {
            ShardMessage::Protocol { epoch, shards, shard, message } => {
                self.handle_protocol(from, (epoch, shards), shard, message);
            }
            ShardMessage::Control { message } => {
                self.control.handle_message(from, message);
                self.poll_control();
            }
            ShardMessage::Rebalance { plan } => self.install_plan(plan),
            ShardMessage::PlanRequest => {
                if let Some(plan) = self.plan {
                    self.extra.push(ShardEnvelope {
                        from: self.id,
                        to: from,
                        message: ShardMessage::Rebalance { plan },
                    });
                }
            }
        }
    }

    /// Routes one stamped protocol message through the assignment fence.
    fn handle_protocol(
        &mut self,
        from: ReplicaId,
        stamp: Stamp,
        shard: ShardId,
        message: Message<LatticeMap<K, V>>,
    ) {
        match fence_decision(self.stamp(), stamp) {
            FenceDecision::Bounce => {
                // The sender routes by a superseded assignment. Its data must
                // not bypass the handoff copies, so answer with the plan instead
                // of processing; the sender installs it, re-homes, and retries.
                self.stats.epoch_bounces += 1;
                if let Some(plan) = self.plan {
                    self.extra.push(ShardEnvelope {
                        from: self.id,
                        to: from,
                        message: ShardMessage::Rebalance { plan },
                    });
                }
            }
            FenceDecision::Defer => {
                // The sender is ahead: its plan has not reached this replica
                // yet. Processing early would bypass the local handoff copy, so
                // buffer until the plan installs — and ask the sender for it,
                // because the one-shot gossip may have been lost and the
                // sender's retransmissions would otherwise just pile up here
                // with the same future stamp.
                if self.deferred.len() < Self::DEFERRED_CAP {
                    self.stats.messages_deferred += 1;
                    self.deferred.push((from, stamp, shard, message));
                }
                self.extra.push(ShardEnvelope {
                    from: self.id,
                    to: from,
                    message: ShardMessage::PlanRequest,
                });
            }
            FenceDecision::Process => {
                // Equal stamps mean the identical assignment, so in-range shard
                // ids are guaranteed for well-behaved peers; anything else is a
                // misconfiguration and is dropped rather than corrupting
                // another instance.
                if shard.as_usize() < self.active() {
                    self.shards[shard.as_usize()].handle_message(from, message);
                }
            }
        }
    }

    /// Initiates a rebalance to `target_shards` hash-partitioned shards.
    ///
    /// The proposal is committed on the control shard through the ordinary
    /// protocol; once durable, this replica reads back the (deterministically
    /// resolved) winner, installs it, and gossips the plan — see
    /// [`crate::rebalance`] for the full choreography. Returns `false` if a
    /// rebalance initiated here is still in flight — the new target is then
    /// queued (latest wins) and starts once the current choreography resolves;
    /// one runs at a time per coordinator, and racing coordinators on different
    /// replicas are resolved by the control lattice plus the assignment-stamp
    /// supersede rule.
    pub fn begin_rebalance(&mut self, target_shards: u32) -> bool {
        if target_shards == 0 {
            return false;
        }
        if self.control_phase.is_some() {
            // One choreography at a time per coordinator; the request is not
            // dropped — it starts as soon as the current one resolves.
            self.queued_target = Some(target_shards);
            return false;
        }
        let epoch = self.partitioner.epoch() + 1;
        let command = self.control.submit(
            self.control_client(),
            Command::Update(MapUpdate::Apply {
                key: epoch,
                update: GSetUpdate::Insert(target_shards),
            }),
        );
        self.control_phase = Some(ControlPhase::Committing { command, epoch });
        true
    }

    /// Advances the coordinator choreography with any control-shard responses.
    fn poll_control(&mut self) {
        for response in self.control.take_responses() {
            let Some(phase) = self.control_phase else { continue };
            match phase {
                ControlPhase::Committing { command, epoch } if command == response.command => {
                    // The proposal is durable; a linearizable read resolves racing
                    // proposals for the same epoch to one deterministic winner.
                    let read = self.control.submit(
                        self.control_client(),
                        Command::Query(MapQuery::Get { key: epoch, query: SetQuery::Elements }),
                    );
                    self.control_phase = Some(ControlPhase::Reading { command: read, epoch });
                }
                ControlPhase::Reading { command, epoch } if command == response.command => {
                    self.control_phase = None;
                    if let ResponseBody::QueryDone(MapOutput::Value(Some(SetOutput::Elements(
                        proposals,
                    )))) = response.body
                    {
                        if let Some(shards) = winning_shards(&proposals) {
                            self.install_plan(RebalancePlan { epoch, shards });
                        }
                    }
                    // A rebalance requested while this one was in flight starts
                    // now, targeting the next epoch.
                    if let Some(target) = self.queued_target.take() {
                        self.begin_rebalance(target);
                    }
                }
                _ => {}
            }
        }
    }

    /// Installs a committed rebalance plan: grows the instance table, performs the
    /// lattice-join state handoff, fences the old assignment, re-homes in-flight
    /// work, and gossips the plan. Idempotent — plans whose `(epoch, shards)`
    /// stamp does not supersede the current assignment are ignored. A same-epoch
    /// plan with a larger shard count **does** supersede: racing coordinators may
    /// transiently install different assignments under one epoch, and the
    /// larger-shard-count winner (the same growth bias as [`winning_shards`])
    /// displaces the loser with a fresh handoff from the replica's current
    /// assignment; the full-stamp fence keeps the two assignments from ever
    /// forming a mixed quorum in the interim.
    pub fn install_plan(&mut self, plan: RebalancePlan) {
        // Epoch 0 is reserved for the construction-time assignment.
        if plan.epoch == 0 || (plan.epoch, plan.shards) <= self.stamp() {
            return;
        }
        let Some(new_inner) = P::from_plan(&plan) else {
            return;
        };
        let old_active = self.active();
        let instances_before = self.shards.len();
        if !self.partitioner.supersede(plan.epoch, new_inner) {
            return;
        }
        self.plan = Some(plan);
        self.stats.plans_installed += 1;
        let new_active = self.active();

        // Grow the instance table deterministically (every replica constructs the
        // same instances). A shrink keeps retired instances: their states are
        // harmless lower bounds a later split reactivates in place.
        while self.shards.len() < new_active {
            let shard = ShardId(self.shards.len() as u32);
            self.shards.push(ShardCore::new(
                shard,
                self.id,
                self.members.clone(),
                self.config.clone(),
            ));
        }

        // Lattice-join state handoff: every key the new assignment routes away
        // from its old instance has its sub-state joined into the destination's
        // acceptor. Nothing is deleted — the log-less design needs no truncation,
        // and stale source copies are lower bounds a future move-back absorbs.
        let mut moves: Vec<LatticeMap<K, V>> =
            (0..self.shards.len()).map(|_| LatticeMap::default()).collect();
        for source in 0..old_active {
            let partitioner = &self.partitioner;
            for (destination, sub) in
                self.shards[source].extract_moves(|key| partitioner.shard_of(key))
            {
                self.stats.keys_moved += sub.len() as u64;
                moves[destination.as_usize()].join(&sub);
            }
        }
        for (index, sub) in moves.iter().enumerate() {
            if !sub.is_empty() {
                self.shards[index].absorb_moved(sub);
            }
        }

        // Cutover: cancel every in-flight command (its old-assignment quorum can
        // no longer be trusted to complete — peers that installed the plan
        // bounce) and re-home it under the new assignment. Updates already
        // applied locally are contained in the handoff copies, so they complete
        // via a resync on their new owner; unapplied updates and queries hand
        // their payloads back and are simply resubmitted there.
        let mut rehome_resync: BTreeMap<usize, Vec<(ClientId, CommandId, K)>> = BTreeMap::new();
        let mut resubmit: Vec<Rehomed<K, V>> = Vec::new();
        for index in 0..instances_before {
            let rehome = self.shards[index].cancel_and_rehome();
            for (client, command, key) in rehome.applied {
                let owner = self.partitioner.shard_of(&key).as_usize();
                self.stats.commands_rehomed += 1;
                rehome_resync.entry(owner).or_default().push((client, command, key));
            }
            for entry in rehome.resubmit {
                self.stats.commands_rehomed += 1;
                resubmit.push(entry);
            }
        }

        // One resync per destination: handed-off ranges become quorum-durable
        // ahead of client traffic, and cut-over updates complete exactly once.
        for (index, moved) in moves.iter().enumerate().take(new_active) {
            let rehomed = rehome_resync.remove(&index).unwrap_or_default();
            if rehomed.is_empty() && moved.is_empty() {
                continue;
            }
            self.shards[index].begin_resync(rehomed);
        }

        for (client, outer, command) in resubmit {
            self.submit_routed(client, outer, command);
        }

        // Keyspace-wide fan-outs restart from scratch against the new shard set.
        // Purge every remaining fan-out leg mapping first: legs that completed
        // but whose responses are still buffered in their instance would
        // otherwise be absorbed into the restarted aggregate, double-counting
        // keys and emitting it before the new legs finish.
        for core in &mut self.shards {
            core.purge_fanout_legs();
        }
        let fanout_ids: Vec<CommandId> = self.fanouts.keys().copied().collect();
        for outer in fanout_ids {
            self.restart_fanout(outer);
        }

        // Messages that were waiting for exactly this assignment can now be
        // processed; anything still newer keeps waiting, anything older turned
        // stale.
        let installed = (plan.epoch, plan.shards);
        let deferred = std::mem::take(&mut self.deferred);
        for (from, stamp, shard, message) in deferred {
            match stamp.cmp(&installed) {
                std::cmp::Ordering::Equal => {
                    if shard.as_usize() < new_active {
                        self.shards[shard.as_usize()].handle_message(from, message);
                    }
                }
                std::cmp::Ordering::Greater => self.deferred.push((from, stamp, shard, message)),
                std::cmp::Ordering::Less => {}
            }
        }

        // Gossip the plan once per install, so idle replicas converge without
        // waiting to be bounced (and a crashed coordinator cannot strand the
        // plan: any installed replica re-announces it).
        for index in 0..self.members.len() {
            let peer = self.members[index];
            if peer != self.id {
                self.extra.push(ShardEnvelope {
                    from: self.id,
                    to: peer,
                    message: ShardMessage::Rebalance { plan },
                });
            }
        }
    }

    /// Resets a fan-out's aggregate and resubmits its legs on the active shards.
    fn restart_fanout(&mut self, outer: CommandId) {
        let client = {
            let Some(fanout) = self.fanouts.get_mut(&outer) else { return };
            fanout.failed = false;
            fanout.acc = match fanout.acc {
                FanoutAcc::Len(_) => FanoutAcc::Len(0),
                FanoutAcc::Keys(_) => FanoutAcc::Keys(Vec::new()),
            };
            fanout.client
        };
        self.launch_fanout_legs(outer, client);
    }

    /// Advances every shard's notion of time (batch flushes, retransmissions).
    pub fn tick(&mut self, now_ms: u64) {
        for shard in &mut self.shards {
            shard.tick(now_ms);
        }
        self.control.tick(now_ms);
    }

    /// Replaces the replica group on every shard (see
    /// [`Replica::update_membership`]).
    pub fn update_membership(&mut self, members: Vec<ReplicaId>) {
        self.members = members.clone();
        for shard in &mut self.shards {
            shard.update_membership(members.clone());
        }
        self.control.update_membership(members);
    }

    /// Drains the shard-tagged messages produced since the last call.
    pub fn take_outbox(&mut self) -> Vec<ShardEnvelope<LatticeMap<K, V>>> {
        let mut out = Vec::new();
        self.drain_outbox_into(&mut out);
        out
    }

    /// Drains the shard-tagged messages produced since the last call into
    /// `sink`, preserving its capacity — the allocation-free form of
    /// [`ShardedReplica::take_outbox`]. Callers recycle one drain buffer
    /// (directly or through a [`crate::EnvelopePool`]) and steady-state cycles
    /// push into resident storage.
    pub fn drain_outbox_into(&mut self, sink: &mut Vec<ShardEnvelope<LatticeMap<K, V>>>) {
        self.poll_control();
        let stamp = self.stamp();
        sink.append(&mut self.extra);
        for core in &mut self.shards {
            core.drain_outbox_into(stamp, sink);
        }
        self.control.drain_outbox_into(&mut self.control_scratch);
        sink.extend(self.control_scratch.drain(..).map(|envelope| ShardEnvelope {
            from: envelope.from,
            to: envelope.to,
            message: ShardMessage::Control { message: envelope.message },
        }));
    }

    /// Drains the client responses produced since the last call, with fan-out
    /// queries aggregated across shards.
    pub fn take_responses(&mut self) -> Vec<ClientResponse<LatticeMap<K, V>>> {
        self.poll_control();
        for index in 0..self.shards.len() {
            self.shards[index].drain_outputs(&mut self.output_scratch);
            for output in std::mem::take(&mut self.output_scratch) {
                match output {
                    ShardOutput::Response(response) => self.responses.push(response),
                    ShardOutput::FanoutLeg { command, shard, round_trips, keys } => {
                        self.absorb_fanout_leg(command, shard, round_trips, keys);
                    }
                }
            }
        }
        std::mem::take(&mut self.responses)
    }

    /// Folds one shard's key-list answer into its fan-out aggregate — filtered to
    /// the keys the shard currently owns — emitting the combined response once
    /// every shard has answered.
    fn absorb_fanout_leg(
        &mut self,
        command: CommandId,
        shard: ShardId,
        round_trips: u32,
        keys: Option<Vec<K>>,
    ) {
        // A shard instance answers for every key in its acceptor state,
        // including stale handoff leftovers; the router filters down to the
        // keys the current assignment actually routes to that shard.
        let owned: Option<Vec<K>> = keys.map(|keys| {
            keys.into_iter().filter(|key| self.partitioner.shard_of(key) == shard).collect()
        });
        let Some(fanout) = self.fanouts.get_mut(&command) else { return };
        fanout.remaining = fanout.remaining.saturating_sub(1);
        fanout.round_trips = fanout.round_trips.max(round_trips);
        match owned {
            Some(keys) => match &mut fanout.acc {
                FanoutAcc::Len(total) => *total += keys.len() as u64,
                FanoutAcc::Keys(all) => all.extend(keys),
            },
            None => fanout.failed = true,
        }
        if fanout.remaining == 0 {
            let fanout = self.fanouts.remove(&command).expect("fan-out present");
            let body = if fanout.failed {
                ResponseBody::QueryFailed
            } else {
                match fanout.acc {
                    FanoutAcc::Len(total) => ResponseBody::QueryDone(MapOutput::Len(total)),
                    FanoutAcc::Keys(mut keys) => {
                        // Shards own disjoint key ranges; one sort restores the
                        // keyspace-wide order `MapQuery::Keys` promises.
                        keys.sort();
                        ResponseBody::QueryDone(MapOutput::Keys(keys))
                    }
                }
            };
            self.responses.push(ClientResponse {
                client: fanout.client,
                command,
                body,
                round_trips: fanout.round_trips,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt::{CounterQuery, CounterUpdate, GCounter};

    type Node = ShardedReplica<String, GCounter>;

    fn ids(n: u64) -> Vec<ReplicaId> {
        (0..n).map(ReplicaId::new).collect()
    }

    fn cluster(replicas: u64, shards: u32, config: ProtocolConfig) -> Vec<Node> {
        ids(replicas)
            .iter()
            .map(|&id| ShardedReplica::new(id, ids(replicas), shards, config.clone()))
            .collect()
    }

    fn run_to_quiescence(nodes: &mut [Node]) {
        loop {
            let mut envelopes = Vec::new();
            for node in nodes.iter_mut() {
                for envelope in node.take_outbox() {
                    envelopes.push((envelope.from, envelope.into_parts()));
                }
            }
            if envelopes.is_empty() {
                break;
            }
            for (from, (to, message)) in envelopes {
                let index = nodes.iter().position(|n| n.id() == to).expect("known replica");
                nodes[index].handle_message(from, message);
            }
        }
    }

    #[test]
    fn updates_and_reads_route_through_the_owning_shard() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "alpha".into(), CounterUpdate::Increment(2));
        nodes[1].submit_update(ClientId(1), "beta".into(), CounterUpdate::Increment(5));
        run_to_quiescence(&mut nodes);
        assert_eq!(nodes[0].take_responses().len(), 1);
        assert_eq!(nodes[1].take_responses().len(), 1);

        // Reads at a third replica observe both committed updates.
        nodes[2].submit_query(ClientId(2), "alpha".into(), CounterQuery::Value);
        nodes[2].submit_query(ClientId(2), "beta".into(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        let responses = nodes[2].take_responses();
        let values: Vec<_> = responses
            .iter()
            .map(|r| match &r.body {
                ResponseBody::QueryDone(MapOutput::Value(Some(v))) => *v,
                other => panic!("unexpected response {other:?}"),
            })
            .collect();
        assert_eq!(values, vec![2, 5]);

        // The keys live on the shards the partitioner says they do.
        let alpha_shard = nodes[0].shard_of(&"alpha".to_string());
        assert!(nodes[0].shard(alpha_shard).local_state().get(&"alpha".to_string()).is_some());
    }

    #[test]
    fn shards_advance_independent_round_counters() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        // Find two keys on different shards.
        let (mut key_a, mut key_b) = (None, None);
        for i in 0..64u32 {
            let key = format!("k{i}");
            match nodes[0].shard_of(&key).as_u32() {
                0 if key_a.is_none() => key_a = Some(key),
                1 if key_b.is_none() => key_b = Some(key),
                _ => {}
            }
        }
        let (key_a, key_b) = (key_a.unwrap(), key_b.unwrap());

        // A read on shard A proceeds even while shard B has an update stuck
        // in flight (its merges are never delivered).
        nodes[0].submit_update(ClientId(0), key_b.clone(), CounterUpdate::Increment(1));
        let stuck: Vec<_> = nodes[0].take_outbox();
        assert!(!stuck.is_empty(), "shard B has undelivered merges");

        nodes[1].submit_query(ClientId(1), key_a.clone(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        let responses = nodes[1].take_responses();
        assert_eq!(responses.len(), 1, "shard A's quorum is not blocked by shard B");
        assert_eq!(responses[0].round_trips, 1, "uncontended shard reads stay one round trip");
        assert!(nodes[0].take_responses().is_empty(), "shard B's update is still pending");
        assert_eq!(nodes[0].in_flight(), 1);
    }

    #[test]
    fn keyspace_wide_queries_aggregate_over_all_shards() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        for (i, key) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            nodes[i % 3].submit_update(ClientId(9), (*key).into(), CounterUpdate::Increment(1));
            run_to_quiescence(&mut nodes);
            nodes[i % 3].take_responses();
        }

        nodes[0].submit(ClientId(9), Command::Query(MapQuery::Len));
        nodes[0].submit(ClientId(9), Command::Query(MapQuery::Keys));
        run_to_quiescence(&mut nodes);
        let responses = nodes[0].take_responses();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].body, ResponseBody::QueryDone(MapOutput::Len(5)));
        match &responses[1].body {
            ResponseBody::QueryDone(MapOutput::Keys(keys)) => {
                let expected: Vec<String> =
                    ["a", "b", "c", "d", "e"].iter().map(|k| k.to_string()).collect();
                assert_eq!(keys, &expected, "fan-out keys come back in keyspace order");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn merged_state_joins_all_shards() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "x".into(), CounterUpdate::Increment(3));
        nodes[0].submit_update(ClientId(0), "y".into(), CounterUpdate::Increment(4));
        run_to_quiescence(&mut nodes);
        let merged = nodes[2].merged_state();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.get(&"x".to_string()).unwrap().value(), 3);
        assert_eq!(merged.get(&"y".to_string()).unwrap().value(), 4);
    }

    #[test]
    fn messages_for_unknown_shards_are_dropped() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        let bogus: ShardMessage<LatticeMap<String, GCounter>> = ShardMessage::Protocol {
            epoch: 0,
            shards: 2,
            shard: ShardId(9),
            message: Message::MergeAck { request: crate::msg::RequestId(0) },
        };
        nodes[0].handle_message(ReplicaId::new(1), bogus);
        assert!(nodes[0].take_outbox().is_empty(), "bogus shard ids produce no traffic");
    }

    #[test]
    fn shard_envelopes_survive_the_wire_format() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "k".into(), CounterUpdate::Increment(1));
        let envelopes = nodes[0].take_outbox();
        assert!(!envelopes.is_empty());
        for envelope in envelopes {
            let bytes = wire::to_vec(&envelope).unwrap();
            let decoded: ShardEnvelope<LatticeMap<String, GCounter>> =
                wire::from_slice(&bytes).unwrap();
            assert_eq!(decoded, envelope);
            // The variant tag, epoch, shard count, and shard id cost four bytes
            // on the wire for small values.
            if let ShardMessage::Protocol { message, .. } = &envelope.message {
                let inner = crate::Envelope {
                    from: envelope.from,
                    to: envelope.to,
                    message: message.clone(),
                };
                let inner_bytes = wire::to_vec(&inner).unwrap();
                assert!(bytes.len() <= inner_bytes.len() + 4);
            }
        }
    }

    #[test]
    fn metrics_aggregate_over_shards() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        for key in ["a", "b", "c"] {
            nodes[0].submit_update(ClientId(0), key.into(), CounterUpdate::Increment(1));
        }
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();
        assert_eq!(nodes[0].metrics().updates_completed, 3);
        assert_eq!(nodes[0].shard_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Node::new(ReplicaId::new(0), ids(3), 0, ProtocolConfig::default());
    }

    // ----- dynamic resharding ---------------------------------------------------

    /// Runs the full coordinator choreography to quiescence: control commit, read,
    /// install, gossip, handoff resyncs.
    fn rebalance_to(nodes: &mut [Node], coordinator: usize, target: u32) {
        assert!(nodes[coordinator].begin_rebalance(target));
        run_to_quiescence(nodes);
    }

    #[test]
    fn split_preserves_values_and_advances_the_epoch_everywhere() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        let keys: Vec<String> = (0..16).map(|i| format!("key{i}")).collect();
        for (i, key) in keys.iter().enumerate() {
            nodes[i % 3].submit_update(
                ClientId(0),
                key.clone(),
                CounterUpdate::Increment(i as u64 + 1),
            );
        }
        run_to_quiescence(&mut nodes);
        for node in nodes.iter_mut() {
            node.take_responses();
        }
        let before: Vec<_> = nodes.iter().map(|n| n.merged_state()).collect();

        rebalance_to(&mut nodes, 0, 8);

        for node in &nodes {
            assert_eq!(node.epoch(), 1, "every replica installs the plan");
            assert_eq!(node.shard_count(), 8);
            assert_eq!(node.current_plan(), Some(RebalancePlan { epoch: 1, shards: 8 }));
            assert!(node.rebalance_stats().plans_installed == 1);
        }
        // The handoff preserves the keyspace exactly.
        for (node, before) in nodes.iter().zip(&before) {
            assert_eq!(&node.merged_state(), before, "handoff must not change merged_state");
        }
        // Post-split reads are linearizable and see every pre-split update.
        for (i, key) in keys.iter().enumerate() {
            nodes[i % 3].submit_query(ClientId(1), key.clone(), CounterQuery::Value);
            run_to_quiescence(&mut nodes);
            let responses = nodes[i % 3].take_responses();
            assert_eq!(responses.len(), 1);
            match &responses[0].body {
                ResponseBody::QueryDone(MapOutput::Value(Some(v))) => {
                    assert_eq!(*v as usize, i + 1, "value of {key} survives the split");
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn merge_then_split_round_trips_through_retired_instances() {
        let mut nodes = cluster(3, 8, ProtocolConfig::default());
        for i in 0..12 {
            nodes[0].submit_update(ClientId(0), format!("k{i}"), CounterUpdate::Increment(1));
        }
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();

        rebalance_to(&mut nodes, 1, 4);
        assert_eq!(nodes[0].shard_count(), 4);
        assert_eq!(nodes[0].instance_count(), 8, "retired instances are kept");

        // Write through the merged assignment, then split back out.
        nodes[2].submit_update(ClientId(0), "k3".into(), CounterUpdate::Increment(5));
        run_to_quiescence(&mut nodes);
        nodes[2].take_responses();

        rebalance_to(&mut nodes, 0, 8);
        assert_eq!(nodes[1].epoch(), 2);
        assert_eq!(nodes[1].shard_count(), 8);

        // The post-merge update is visible after moving back: the reactivated
        // instance's stale copy was absorbed by the lattice join.
        nodes[1].submit_query(ClientId(9), "k3".into(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        let responses = nodes[1].take_responses();
        assert_eq!(
            responses[0].body,
            ResponseBody::QueryDone(MapOutput::Value(Some(6))),
            "updates from every epoch survive merge + split"
        );
    }

    #[test]
    fn rebalance_to_the_identical_plan_is_a_noop_for_data_and_routing() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "a".into(), CounterUpdate::Increment(7));
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();
        let before: Vec<_> = nodes.iter().map(|n| n.merged_state()).collect();

        rebalance_to(&mut nodes, 0, 4);

        for (node, before) in nodes.iter().zip(&before) {
            assert_eq!(node.epoch(), 1, "the epoch still advances (the plan committed)");
            assert_eq!(node.shard_count(), 4);
            assert_eq!(node.instance_count(), 4);
            assert_eq!(&node.merged_state(), before);
            assert_eq!(
                node.rebalance_stats().keys_moved,
                0,
                "no key moves under an identical plan"
            );
        }
        nodes[2].submit_query(ClientId(0), "a".into(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        assert_eq!(
            nodes[2].take_responses()[0].body,
            ResponseBody::QueryDone(MapOutput::Value(Some(7)))
        );
    }

    #[test]
    fn in_flight_updates_cut_over_complete_exactly_once() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        // Start an update but do not deliver its merges yet.
        nodes[0].submit_update(ClientId(0), "pending".into(), CounterUpdate::Increment(3));
        let held: Vec<_> = nodes[0].take_outbox();
        assert!(!held.is_empty());
        assert_eq!(nodes[0].in_flight(), 1);

        // The other replicas agree on a split while the update is in flight; the
        // coordinator's plan gossip reaches replica 0, which re-homes the update.
        assert!(nodes[1].begin_rebalance(4));
        run_to_quiescence(&mut nodes);

        assert_eq!(nodes[0].epoch(), 1);
        let responses = nodes[0].take_responses();
        assert_eq!(responses.len(), 1, "the cut-over update answers exactly once");
        assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
        assert!(nodes[0].rebalance_stats().commands_rehomed >= 1);

        // Exactly once: the value reflects a single application of the increment.
        nodes[2].submit_query(ClientId(1), "pending".into(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        assert_eq!(
            nodes[2].take_responses()[0].body,
            ResponseBody::QueryDone(MapOutput::Value(Some(3)))
        );
    }

    #[test]
    fn old_epoch_messages_bounce_back_the_plan() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        rebalance_to(&mut nodes, 0, 4);
        assert_eq!(nodes[1].epoch(), 1);

        // A straggler still routing by epoch 0 gets the plan back instead of an ack.
        let stale: ShardMessage<LatticeMap<String, GCounter>> = ShardMessage::Protocol {
            epoch: 0,
            shards: 2,
            shard: ShardId(0),
            message: Message::MergeAck { request: crate::msg::RequestId(99) },
        };
        nodes[1].handle_message(ReplicaId::new(2), stale);
        let bounced = nodes[1].take_outbox();
        assert!(bounced.iter().any(|envelope| matches!(
            envelope.message,
            ShardMessage::Rebalance { plan: RebalancePlan { epoch: 1, shards: 4 } }
        ) && envelope.to == ReplicaId::new(2)));
        assert_eq!(nodes[1].rebalance_stats().epoch_bounces, 1);
    }

    #[test]
    fn future_epoch_messages_are_deferred_until_the_plan_installs() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        // Hand-deliver a future-epoch message: it must not be processed yet.
        let early: ShardMessage<LatticeMap<String, GCounter>> = ShardMessage::Protocol {
            epoch: 1,
            shards: 4,
            shard: ShardId(3),
            message: Message::MergeAck { request: crate::msg::RequestId(7) },
        };
        nodes[0].handle_message(ReplicaId::new(1), early);
        assert_eq!(nodes[0].rebalance_stats().messages_deferred, 1);
        // Deferral asks the ahead sender for its plan (the one-shot gossip may
        // have been lost), and produces nothing else.
        let out = nodes[0].take_outbox();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].message, ShardMessage::PlanRequest));
        assert_eq!(out[0].to, ReplicaId::new(1));

        // Installing the plan drains the buffer (the ack targets a dead request,
        // so it is absorbed silently — the point is that it is routed at all).
        nodes[0].install_plan(RebalancePlan { epoch: 1, shards: 4 });
        assert_eq!(nodes[0].epoch(), 1);
        assert_eq!(nodes[0].shard_count(), 4);
    }

    /// Racing coordinators are the dangerous corner of plan agreement: replica 2
    /// can commit + read + install its plan before replica 0's proposal for the
    /// *same* epoch even commits, so the two read different proposal sets and
    /// derive different winners. The full `(epoch, shards)` stamp keeps the two
    /// assignments fenced from each other, and the larger-shard-count plan
    /// supersedes in place, so the cluster converges to one assignment.
    #[test]
    fn racing_coordinators_converge_to_one_assignment() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        for i in 0..10 {
            nodes[i % 3].submit_update(ClientId(0), format!("k{i}"), CounterUpdate::Increment(1));
        }
        run_to_quiescence(&mut nodes);
        for node in nodes.iter_mut() {
            node.take_responses();
        }

        // Both coordinators target epoch 1 with different shard counts; replica
        // 0's traffic is held back so replica 2 commits, reads {4}, and installs
        // (1, 4) everywhere before replica 0's proposal for 8 even lands.
        assert!(nodes[0].begin_rebalance(8));
        assert!(nodes[2].begin_rebalance(4));
        let mut held = Vec::new();
        loop {
            let mut deliverable = Vec::new();
            for node in nodes.iter_mut() {
                for envelope in node.take_outbox() {
                    if envelope.from == ReplicaId::new(0) {
                        held.push(envelope);
                    } else {
                        deliverable.push(envelope);
                    }
                }
            }
            if deliverable.is_empty() {
                break;
            }
            for envelope in deliverable {
                let from = envelope.from;
                let (to, message) = envelope.into_parts();
                let index = nodes.iter().position(|n| n.id() == to).expect("known replica");
                nodes[index].handle_message(from, message);
            }
        }
        assert_eq!(nodes[2].current_plan(), Some(RebalancePlan { epoch: 1, shards: 4 }));

        // Release replica 0's proposal; it commits late, reads {4, 8}, picks the
        // winner 8, and supersedes the same-epoch 4-shard assignment everywhere.
        for envelope in held {
            let from = envelope.from;
            let (to, message) = envelope.into_parts();
            let index = nodes.iter().position(|n| n.id() == to).expect("known replica");
            nodes[index].handle_message(from, message);
        }
        run_to_quiescence(&mut nodes);

        let stamps: Vec<_> =
            nodes.iter().map(|n| (n.epoch(), n.shard_count(), n.current_plan())).collect();
        assert!(
            stamps.iter().all(|stamp| stamp == &stamps[0]),
            "replicas must converge to one assignment, got {stamps:?}"
        );
        assert_eq!(stamps[0].2, Some(RebalancePlan { epoch: 1, shards: 8 }));

        // Data written before the race survives, reads stay linearizable.
        for i in 0..10 {
            nodes[i % 3].submit_query(ClientId(1), format!("k{i}"), CounterQuery::Value);
            run_to_quiescence(&mut nodes);
            let responses = nodes[i % 3].take_responses();
            assert_eq!(
                responses[0].body,
                ResponseBody::QueryDone(MapOutput::Value(Some(1))),
                "k{i} must survive the racing rebalances"
            );
        }
    }

    /// A fan-out leg that completed — with its response still buffered in the
    /// instance — before a plan installs must not leak into the restarted
    /// fan-out: its stale answer would double-count keys and complete the
    /// aggregate early.
    #[test]
    fn buffered_fanout_legs_do_not_leak_into_the_restarted_fanout() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        for i in 0..10 {
            nodes[0].submit_update(ClientId(0), format!("k{i}"), CounterUpdate::Increment(1));
        }
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();

        // Run the fan-out to full completion at the protocol level WITHOUT
        // draining responses: every leg's answer is now buffered.
        nodes[0].submit(ClientId(5), Command::Query(MapQuery::Len));
        run_to_quiescence(&mut nodes);

        // Install a same-shard-count plan directly: the fan-out restarts while
        // the stale leg responses still sit in their instances.
        for node in nodes.iter_mut() {
            node.install_plan(RebalancePlan { epoch: 1, shards: 2 });
        }
        run_to_quiescence(&mut nodes);
        let responses = nodes[0].take_responses();
        assert_eq!(responses.len(), 1, "exactly one aggregate response");
        assert_eq!(
            responses[0].body,
            ResponseBody::QueryDone(MapOutput::Len(10)),
            "stale buffered legs must not be double-counted"
        );
    }

    /// Losing every copy of the one-shot plan gossip must not strand a passive
    /// replica: the first future-stamp message it defers triggers a
    /// [`ShardMessage::PlanRequest`], the ahead sender replies with the plan, and
    /// the replica installs and catches up — no retransmission timers needed.
    #[test]
    fn a_replica_that_missed_all_gossip_recovers_via_plan_request() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "seed".into(), CounterUpdate::Increment(1));
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();

        // The rebalance completes on replicas 0 and 1 (a quorum); every message
        // addressed to replica 2 — plan gossip included — is lost.
        assert!(nodes[0].begin_rebalance(4));
        loop {
            let mut envelopes = Vec::new();
            for node in nodes.iter_mut() {
                for envelope in node.take_outbox() {
                    if envelope.to != ReplicaId::new(2) {
                        envelopes.push((envelope.from, envelope.into_parts()));
                    }
                }
            }
            if envelopes.is_empty() {
                break;
            }
            for (from, (to, message)) in envelopes {
                let index = nodes.iter().position(|n| n.id() == to).expect("known replica");
                nodes[index].handle_message(from, message);
            }
        }
        assert_eq!(nodes[0].epoch(), 1);
        assert_eq!(nodes[1].epoch(), 1);
        assert_eq!(nodes[2].epoch(), 0, "replica 2 missed the plan entirely");

        // The next ordinary traffic to replica 2 carries the new stamp; the
        // plan-request handshake brings it back into the group.
        nodes[0].submit_update(ClientId(1), "after".into(), CounterUpdate::Increment(5));
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();
        assert_eq!(nodes[2].epoch(), 1, "deferral requested and installed the plan");
        assert_eq!(nodes[2].shard_count(), 4);

        nodes[2].submit_query(ClientId(2), "after".into(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        assert_eq!(
            nodes[2].take_responses()[0].body,
            ResponseBody::QueryDone(MapOutput::Value(Some(5))),
            "the recovered replica serves linearizable reads at the new assignment"
        );
    }

    #[test]
    fn fanouts_straddling_a_rebalance_count_every_key_exactly_once() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        for i in 0..10 {
            nodes[0].submit_update(ClientId(0), format!("k{i}"), CounterUpdate::Increment(1));
        }
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();

        // Start a keyspace-wide Len, hold its traffic, then rebalance mid-flight.
        nodes[1].submit(ClientId(5), Command::Query(MapQuery::Len));
        let _held = nodes[1].take_outbox();
        rebalance_to(&mut nodes, 0, 4);
        run_to_quiescence(&mut nodes);
        let responses = nodes[1].take_responses();
        assert_eq!(responses.len(), 1);
        assert_eq!(
            responses[0].body,
            ResponseBody::QueryDone(MapOutput::Len(10)),
            "stale handoff leftovers must not be double-counted"
        );
    }
}
