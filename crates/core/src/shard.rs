//! Sharded keyspace: one independent protocol instance per key range.
//!
//! The paper's fine-granularity argument (§1) is that linearizable CRDT access is
//! most useful *per key*, not per database: commands on different keys do not
//! conflict, so serializing a whole keyspace through a single round counter (one
//! [`Replica<LatticeMap>`] replicating the entire map) wastes the protocol's
//! leaderless parallelism. Generalized lattice agreement (Faleiro et al., PODC'12)
//! makes the finer granularity safe: per-key linearizability needs no ordering
//! *across* keys, so disjoint key ranges may run entirely independent protocol
//! instances.
//!
//! [`ShardedReplica`] is that engine. It owns `S` independent
//! [`Replica<LatticeMap<K, V>>`] instances — each with its own acceptor state,
//! round counter, in-flight quorums, and batching timers — and routes every
//! submitted key through a deterministic [`Partitioner`]. Outgoing traffic is
//! multiplexed behind [`ShardEnvelope`]/[`ShardMessage`] (the inner protocol
//! message tagged with its [`ShardId`]), so a single transport connection per peer
//! carries all shards while quorums on different shards advance concurrently: an
//! update on shard 0 never waits behind a contended read quorum on shard 3.
//!
//! Keyspace-wide queries ([`MapQuery::Len`], [`MapQuery::Keys`]) fan out to every
//! shard and aggregate the per-shard answers; each per-shard answer is
//! individually linearizable, the aggregate is not a keyspace snapshot (exactly
//! the trade the paper's per-key granularity makes).

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

use crdt::{Crdt, DeltaCrdt, Lattice, LatticeMap, MapOutput, MapQuery, MapUpdate, ReplicaId};
use quorum::{HashPartitioner, Membership, Partitioner, ShardId};
use serde::{Deserialize, Serialize};

use crate::config::ProtocolConfig;
use crate::metrics::{Metrics, WireMetrics};
use crate::msg::{ClientId, ClientResponse, Command, CommandId, Envelope, Message, ResponseBody};
use crate::replica::Replica;

/// A protocol message tagged with the shard (protocol instance) it belongs to.
///
/// This is what peers exchange in a sharded deployment: the `wire` codec encodes
/// the tag as a single varint in front of the inner message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C: Serialize, C::Delta: Serialize",
    deserialize = "C: Deserialize<'de>, C::Delta: Deserialize<'de>"
))]
pub struct ShardMessage<C: Crdt + DeltaCrdt> {
    /// The protocol instance this message belongs to.
    pub shard: ShardId,
    /// The inner protocol message.
    pub message: Message<C>,
}

/// An addressed [`ShardMessage`]: the sharded counterpart of [`Envelope`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C: Serialize, C::Delta: Serialize",
    deserialize = "C: Deserialize<'de>, C::Delta: Deserialize<'de>"
))]
pub struct ShardEnvelope<C: Crdt + DeltaCrdt> {
    /// The protocol instance the inner envelope belongs to.
    pub shard: ShardId,
    /// The addressed inner message.
    pub inner: Envelope<C>,
}

impl<C: Crdt + DeltaCrdt> ShardEnvelope<C> {
    /// Splits the envelope into its destination and the transferable message.
    pub fn into_parts(self) -> (ReplicaId, ShardMessage<C>) {
        (self.inner.to, ShardMessage { shard: self.shard, message: self.inner.message })
    }
}

/// What a completed inner command maps back to at the sharded engine.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// A single-shard command; answer with the outer command id.
    Single { command: CommandId },
    /// One leg of a keyspace-wide fan-out query.
    Fanout { command: CommandId },
}

/// Partial aggregate of a keyspace-wide query.
#[derive(Debug)]
enum FanoutAcc<K> {
    Len(u64),
    Keys(Vec<K>),
}

/// An in-flight keyspace-wide query, waiting for every shard's answer.
#[derive(Debug)]
struct Fanout<K> {
    client: ClientId,
    remaining: usize,
    /// Worst round-trip count over the per-shard legs (the legs run in parallel,
    /// so the slowest leg is the fan-out's latency).
    round_trips: u32,
    failed: bool,
    acc: FanoutAcc<K>,
}

/// A replicated keyspace partitioned over independent protocol instances.
///
/// One `ShardedReplica` is one *process* of the cluster: it holds this replica's
/// acceptor+proposer pair for **every** shard and routes between them. Drive it
/// exactly like a [`Replica`] — [`ShardedReplica::submit`],
/// [`ShardedReplica::handle_message`], [`ShardedReplica::tick`], then drain
/// [`ShardedReplica::take_outbox`] / [`ShardedReplica::take_responses`].
///
/// # Example
///
/// ```
/// use crdt::{CounterUpdate, GCounter, ReplicaId};
/// use crdt_paxos_core::{ClientId, ProtocolConfig, ResponseBody, ShardedReplica};
///
/// let ids: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
/// let mut nodes: Vec<ShardedReplica<String, GCounter>> = ids
///     .iter()
///     .map(|&id| ShardedReplica::new(id, ids.clone(), 4, ProtocolConfig::default()))
///     .collect();
///
/// // Updates on different keys run on independent protocol instances.
/// nodes[0].submit_update(ClientId(0), "clicks".to_string(), CounterUpdate::Increment(2));
/// nodes[1].submit_update(ClientId(1), "views".to_string(), CounterUpdate::Increment(5));
///
/// // Deliver all produced messages until quiescence.
/// loop {
///     let mut envelopes = Vec::new();
///     for node in &mut nodes {
///         envelopes.extend(node.take_outbox());
///     }
///     if envelopes.is_empty() {
///         break;
///     }
///     for envelope in envelopes {
///         let from = envelope.inner.from;
///         let (to, message) = envelope.into_parts();
///         nodes[to.as_u64() as usize].handle_message(from, message);
///     }
/// }
/// let responses = nodes[0].take_responses();
/// assert!(matches!(responses[0].body, ResponseBody::UpdateDone));
/// ```
#[derive(Debug)]
pub struct ShardedReplica<K, V, P = HashPartitioner>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
    P: Partitioner<K>,
{
    id: ReplicaId,
    partitioner: P,
    shards: Vec<Replica<LatticeMap<K, V>>>,
    next_command: u64,
    pending: BTreeMap<(ShardId, CommandId), Pending>,
    fanouts: BTreeMap<CommandId, Fanout<K>>,
    responses: Vec<ClientResponse<LatticeMap<K, V>>>,
}

impl<K, V> ShardedReplica<K, V, HashPartitioner>
where
    K: Ord + Clone + Hash + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
{
    /// Creates a sharded replica with `shards` hash-partitioned protocol instances.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `members` does not contain `id`.
    pub fn new(
        id: ReplicaId,
        members: Vec<ReplicaId>,
        shards: u32,
        config: ProtocolConfig,
    ) -> Self {
        Self::with_partitioner(id, members, HashPartitioner::new(shards), config)
    }
}

impl<K, V, P> ShardedReplica<K, V, P>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
    P: Partitioner<K>,
{
    /// Creates a sharded replica routing through the given partitioner.
    ///
    /// Every replica of the cluster must be constructed with an identical
    /// partitioner: routing a key to different shards on different replicas would
    /// split the key's history over unrelated protocol instances.
    ///
    /// # Panics
    ///
    /// Panics if the partitioner has zero shards or `members` does not contain `id`.
    pub fn with_partitioner(
        id: ReplicaId,
        members: Vec<ReplicaId>,
        partitioner: P,
        config: ProtocolConfig,
    ) -> Self {
        let shard_count = partitioner.shards();
        assert!(shard_count > 0, "a sharded replica needs at least one shard");
        let shards = (0..shard_count)
            .map(|_| Replica::new(id, members.clone(), LatticeMap::default(), config.clone()))
            .collect();
        ShardedReplica {
            id,
            partitioner,
            shards,
            next_command: 0,
            pending: BTreeMap::new(),
            fanouts: BTreeMap::new(),
            responses: Vec::new(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Number of shards (independent protocol instances).
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The partitioner routing keys to shards.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &K) -> ShardId {
        self.partitioner.shard_of(key)
    }

    /// The replica group (identical across shards).
    pub fn membership(&self) -> &Membership<ReplicaId> {
        self.shards[0].membership()
    }

    /// Read access to one shard's protocol instance (tests, observability).
    pub fn shard(&self, shard: ShardId) -> &Replica<LatticeMap<K, V>> {
        &self.shards[shard.as_usize()]
    }

    /// Iterates over all shard instances in shard order.
    pub fn shards(&self) -> impl Iterator<Item = &Replica<LatticeMap<K, V>>> {
        self.shards.iter()
    }

    /// Total number of protocol instances currently in flight, over all shards.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(Replica::in_flight).sum()
    }

    /// Proposer metrics aggregated over all shards.
    pub fn metrics(&self) -> Metrics {
        let mut total = Metrics::new();
        for shard in &self.shards {
            total.merge(shard.metrics());
        }
        total
    }

    /// Encoded bytes-on-the-wire per shard (only filled when the driver records
    /// sizes via [`ShardedReplica::record_wire_bytes`]).
    pub fn wire_metrics_by_shard(&self) -> Vec<(ShardId, WireMetrics)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| (ShardId(index as u32), shard.metrics().wire.clone()))
            .collect()
    }

    /// Records the encoded size of one outgoing message on its shard's metrics.
    pub fn record_wire_bytes(&mut self, shard: ShardId, kind: &str, bytes: u64) {
        self.shards[shard.as_usize()].record_wire_bytes(kind, bytes);
    }

    /// The whole keyspace as one map: the join of every shard's local acceptor
    /// state (observability and tests; linearizable reads go through
    /// [`ShardedReplica::submit`]).
    pub fn merged_state(&self) -> LatticeMap<K, V> {
        let mut merged = LatticeMap::default();
        for shard in &self.shards {
            merged.join(shard.local_state());
        }
        merged
    }

    /// Submits a client command, routing it to the owning shard (or fanning it out
    /// to all shards for keyspace-wide queries). Returns the id used to correlate
    /// the response.
    pub fn submit(&mut self, client: ClientId, command: Command<LatticeMap<K, V>>) -> CommandId {
        let outer = CommandId(self.next_command);
        self.next_command += 1;
        match command {
            Command::Update(MapUpdate::Apply { key, update }) => {
                let shard = self.partitioner.shard_of(&key);
                let command = Command::Update(MapUpdate::Apply { key, update });
                let inner = self.shards[shard.as_usize()].submit(client, command);
                self.pending.insert((shard, inner), Pending::Single { command: outer });
            }
            Command::Query(MapQuery::Get { key, query }) => {
                let shard = self.partitioner.shard_of(&key);
                let command = Command::Query(MapQuery::Get { key, query });
                let inner = self.shards[shard.as_usize()].submit(client, command);
                self.pending.insert((shard, inner), Pending::Single { command: outer });
            }
            Command::Query(query) => {
                // Keyspace-wide query: every shard answers for its key range.
                let acc = match query {
                    MapQuery::Len => FanoutAcc::Len(0),
                    MapQuery::Keys => FanoutAcc::Keys(Vec::new()),
                    MapQuery::Get { .. } => unreachable!("routed above"),
                };
                self.fanouts.insert(
                    outer,
                    Fanout {
                        client,
                        remaining: self.shards.len(),
                        round_trips: 0,
                        failed: false,
                        acc,
                    },
                );
                for index in 0..self.shards.len() {
                    let inner = self.shards[index].submit(client, Command::Query(query.clone()));
                    let shard = ShardId(index as u32);
                    self.pending.insert((shard, inner), Pending::Fanout { command: outer });
                }
            }
        }
        outer
    }

    /// Convenience wrapper: apply a nested update to `key`.
    pub fn submit_update(&mut self, client: ClientId, key: K, update: V::Update) -> CommandId {
        self.submit(client, Command::Update(MapUpdate::Apply { key, update }))
    }

    /// Convenience wrapper: run a nested query against `key`.
    pub fn submit_query(&mut self, client: ClientId, key: K, query: V::Query) -> CommandId {
        self.submit(client, Command::Query(MapQuery::Get { key, query }))
    }

    /// Handles a shard-tagged protocol message from another replica.
    ///
    /// Messages for unknown shards (a peer with a diverging shard count — a
    /// misconfiguration) are dropped rather than corrupting another instance.
    pub fn handle_message(&mut self, from: ReplicaId, message: ShardMessage<LatticeMap<K, V>>) {
        let Some(shard) = self.shards.get_mut(message.shard.as_usize()) else { return };
        shard.handle_message(from, message.message);
    }

    /// Advances every shard's notion of time (batch flushes, retransmissions).
    pub fn tick(&mut self, now_ms: u64) {
        for shard in &mut self.shards {
            shard.tick(now_ms);
        }
    }

    /// Replaces the replica group on every shard (see
    /// [`Replica::update_membership`]).
    pub fn update_membership(&mut self, members: Vec<ReplicaId>) {
        for shard in &mut self.shards {
            shard.update_membership(members.clone());
        }
    }

    /// Drains the shard-tagged messages produced since the last call.
    pub fn take_outbox(&mut self) -> Vec<ShardEnvelope<LatticeMap<K, V>>> {
        let mut out = Vec::new();
        for (index, shard) in self.shards.iter_mut().enumerate() {
            let shard_id = ShardId(index as u32);
            out.extend(
                shard
                    .take_outbox()
                    .into_iter()
                    .map(|inner| ShardEnvelope { shard: shard_id, inner }),
            );
        }
        out
    }

    /// Drains the client responses produced since the last call, with fan-out
    /// queries aggregated across shards.
    pub fn take_responses(&mut self) -> Vec<ClientResponse<LatticeMap<K, V>>> {
        for index in 0..self.shards.len() {
            let shard = ShardId(index as u32);
            for response in self.shards[index].take_responses() {
                let Some(pending) = self.pending.remove(&(shard, response.command)) else {
                    continue;
                };
                match pending {
                    Pending::Single { command } => self.responses.push(ClientResponse {
                        client: response.client,
                        command,
                        body: response.body,
                        round_trips: response.round_trips,
                    }),
                    Pending::Fanout { command } => self.absorb_fanout_leg(command, response),
                }
            }
        }
        std::mem::take(&mut self.responses)
    }

    /// Folds one shard's answer into its fan-out aggregate, emitting the combined
    /// response once every shard has answered.
    fn absorb_fanout_leg(
        &mut self,
        command: CommandId,
        response: ClientResponse<LatticeMap<K, V>>,
    ) {
        let Some(fanout) = self.fanouts.get_mut(&command) else { return };
        fanout.remaining = fanout.remaining.saturating_sub(1);
        fanout.round_trips = fanout.round_trips.max(response.round_trips);
        match response.body {
            ResponseBody::QueryDone(MapOutput::Len(count)) => {
                if let FanoutAcc::Len(total) = &mut fanout.acc {
                    *total += count;
                } else {
                    fanout.failed = true;
                }
            }
            ResponseBody::QueryDone(MapOutput::Keys(mut keys)) => {
                if let FanoutAcc::Keys(all) = &mut fanout.acc {
                    all.append(&mut keys);
                } else {
                    fanout.failed = true;
                }
            }
            _ => fanout.failed = true,
        }
        if fanout.remaining == 0 {
            let fanout = self.fanouts.remove(&command).expect("fan-out present");
            let body = if fanout.failed {
                ResponseBody::QueryFailed
            } else {
                match fanout.acc {
                    FanoutAcc::Len(total) => ResponseBody::QueryDone(MapOutput::Len(total)),
                    FanoutAcc::Keys(mut keys) => {
                        // Shards own disjoint key ranges; one sort restores the
                        // keyspace-wide order `MapQuery::Keys` promises.
                        keys.sort();
                        ResponseBody::QueryDone(MapOutput::Keys(keys))
                    }
                }
            };
            self.responses.push(ClientResponse {
                client: fanout.client,
                command,
                body,
                round_trips: fanout.round_trips,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt::{CounterQuery, CounterUpdate, GCounter};

    type Node = ShardedReplica<String, GCounter>;

    fn ids(n: u64) -> Vec<ReplicaId> {
        (0..n).map(ReplicaId::new).collect()
    }

    fn cluster(replicas: u64, shards: u32, config: ProtocolConfig) -> Vec<Node> {
        ids(replicas)
            .iter()
            .map(|&id| ShardedReplica::new(id, ids(replicas), shards, config.clone()))
            .collect()
    }

    fn run_to_quiescence(nodes: &mut [Node]) {
        loop {
            let mut envelopes = Vec::new();
            for node in nodes.iter_mut() {
                for envelope in node.take_outbox() {
                    envelopes.push((envelope.inner.from, envelope.into_parts()));
                }
            }
            if envelopes.is_empty() {
                break;
            }
            for (from, (to, message)) in envelopes {
                let index = nodes.iter().position(|n| n.id() == to).expect("known replica");
                nodes[index].handle_message(from, message);
            }
        }
    }

    #[test]
    fn updates_and_reads_route_through_the_owning_shard() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "alpha".into(), CounterUpdate::Increment(2));
        nodes[1].submit_update(ClientId(1), "beta".into(), CounterUpdate::Increment(5));
        run_to_quiescence(&mut nodes);
        assert_eq!(nodes[0].take_responses().len(), 1);
        assert_eq!(nodes[1].take_responses().len(), 1);

        // Reads at a third replica observe both committed updates.
        nodes[2].submit_query(ClientId(2), "alpha".into(), CounterQuery::Value);
        nodes[2].submit_query(ClientId(2), "beta".into(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        let responses = nodes[2].take_responses();
        let values: Vec<_> = responses
            .iter()
            .map(|r| match &r.body {
                ResponseBody::QueryDone(MapOutput::Value(Some(v))) => *v,
                other => panic!("unexpected response {other:?}"),
            })
            .collect();
        assert_eq!(values, vec![2, 5]);

        // The keys live on the shards the partitioner says they do.
        let alpha_shard = nodes[0].shard_of(&"alpha".to_string());
        assert!(nodes[0].shard(alpha_shard).local_state().get(&"alpha".to_string()).is_some());
    }

    #[test]
    fn shards_advance_independent_round_counters() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        // Find two keys on different shards.
        let (mut key_a, mut key_b) = (None, None);
        for i in 0..64u32 {
            let key = format!("k{i}");
            match nodes[0].shard_of(&key).as_u32() {
                0 if key_a.is_none() => key_a = Some(key),
                1 if key_b.is_none() => key_b = Some(key),
                _ => {}
            }
        }
        let (key_a, key_b) = (key_a.unwrap(), key_b.unwrap());

        // A read on shard A proceeds even while shard B has an update stuck
        // in flight (its merges are never delivered).
        nodes[0].submit_update(ClientId(0), key_b.clone(), CounterUpdate::Increment(1));
        let stuck: Vec<_> = nodes[0].take_outbox();
        assert!(!stuck.is_empty(), "shard B has undelivered merges");

        nodes[1].submit_query(ClientId(1), key_a.clone(), CounterQuery::Value);
        run_to_quiescence(&mut nodes);
        let responses = nodes[1].take_responses();
        assert_eq!(responses.len(), 1, "shard A's quorum is not blocked by shard B");
        assert_eq!(responses[0].round_trips, 1, "uncontended shard reads stay one round trip");
        assert!(nodes[0].take_responses().is_empty(), "shard B's update is still pending");
        assert_eq!(nodes[0].in_flight(), 1);
    }

    #[test]
    fn keyspace_wide_queries_aggregate_over_all_shards() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        for (i, key) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            nodes[i % 3].submit_update(ClientId(9), (*key).into(), CounterUpdate::Increment(1));
            run_to_quiescence(&mut nodes);
            nodes[i % 3].take_responses();
        }

        nodes[0].submit(ClientId(9), Command::Query(MapQuery::Len));
        nodes[0].submit(ClientId(9), Command::Query(MapQuery::Keys));
        run_to_quiescence(&mut nodes);
        let responses = nodes[0].take_responses();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].body, ResponseBody::QueryDone(MapOutput::Len(5)));
        match &responses[1].body {
            ResponseBody::QueryDone(MapOutput::Keys(keys)) => {
                let expected: Vec<String> =
                    ["a", "b", "c", "d", "e"].iter().map(|k| k.to_string()).collect();
                assert_eq!(keys, &expected, "fan-out keys come back in keyspace order");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn merged_state_joins_all_shards() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "x".into(), CounterUpdate::Increment(3));
        nodes[0].submit_update(ClientId(0), "y".into(), CounterUpdate::Increment(4));
        run_to_quiescence(&mut nodes);
        let merged = nodes[2].merged_state();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.get(&"x".to_string()).unwrap().value(), 3);
        assert_eq!(merged.get(&"y".to_string()).unwrap().value(), 4);
    }

    #[test]
    fn messages_for_unknown_shards_are_dropped() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        let bogus: ShardMessage<LatticeMap<String, GCounter>> = ShardMessage {
            shard: ShardId(9),
            message: Message::MergeAck { request: crate::msg::RequestId(0) },
        };
        nodes[0].handle_message(ReplicaId::new(1), bogus);
        assert!(nodes[0].take_outbox().is_empty(), "bogus shard ids produce no traffic");
    }

    #[test]
    fn shard_envelopes_survive_the_wire_format() {
        let mut nodes = cluster(3, 2, ProtocolConfig::default());
        nodes[0].submit_update(ClientId(0), "k".into(), CounterUpdate::Increment(1));
        let envelopes = nodes[0].take_outbox();
        assert!(!envelopes.is_empty());
        for envelope in envelopes {
            let bytes = wire::to_vec(&envelope).unwrap();
            let decoded: ShardEnvelope<LatticeMap<String, GCounter>> =
                wire::from_slice(&bytes).unwrap();
            assert_eq!(decoded, envelope);
            // The shard tag costs a single byte on the wire for small shard ids.
            let inner_bytes = wire::to_vec(&envelope.inner).unwrap();
            assert!(bytes.len() <= inner_bytes.len() + 2);
        }
    }

    #[test]
    fn metrics_aggregate_over_shards() {
        let mut nodes = cluster(3, 4, ProtocolConfig::default());
        for key in ["a", "b", "c"] {
            nodes[0].submit_update(ClientId(0), key.into(), CounterUpdate::Increment(1));
        }
        run_to_quiescence(&mut nodes);
        nodes[0].take_responses();
        assert_eq!(nodes[0].metrics().updates_completed, 3);
        assert_eq!(nodes[0].shard_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Node::new(ReplicaId::new(0), ids(3), 0, ProtocolConfig::default());
    }
}
