//! # crdt-paxos-core — linearizable, leaderless, logless replication of CRDTs
//!
//! This crate implements the protocol of *Linearizable State Machine Replication of
//! State-Based CRDTs without Logs* (Skrzypczak, Schintke, Schütt — PODC 2019), here
//! called **CRDT Paxos** after the name used in the paper's evaluation.
//!
//! ## What the protocol gives you
//!
//! * **Linearizable** reads and updates on any state-based CRDT (`crdt::Crdt`).
//! * **No leader** — every replica accepts commands; there is no election machinery
//!   and no single bottleneck or single point of failure.
//! * **No log** — replicas store the CRDT payload plus a single round; updates modify
//!   the payload in place by joining states, so no truncation or snapshotting exists.
//! * **Updates in one round trip** — an update is applied locally and merged into a
//!   quorum with a single `MERGE`/`MERGED` exchange.
//! * **Reads in one or two round trips** in the common case — one when a *consistent
//!   quorum* is observed, two when a vote is needed; retries only under contention
//!   with concurrent updates (the paper measures > 97 % of reads within two round
//!   trips under high concurrency when batching is enabled).
//!
//! ## Crate layout
//!
//! * [`Replica`] — the sans-io state machine combining the proposer and acceptor
//!   roles; drive it with [`Replica::submit`], [`Replica::handle_message`] and
//!   [`Replica::tick`], and drain [`Replica::take_outbox`] /
//!   [`Replica::take_responses`].
//! * [`Acceptor`] — the acceptor role alone (payload + round), useful for tests.
//! * [`Message`], [`Envelope`] — the wire-level protocol messages of Algorithm 2.
//! * [`Payload`] — what state-bearing messages carry: the full CRDT state (as in
//!   the paper) or a delta (Almeida et al.), selected per peer when
//!   [`ProtocolConfig::payload_mode`] is [`PayloadMode::DeltaWhenPossible`]. The
//!   proposer tracks, per peer, the largest state the peer is known to contain
//!   (from `MERGED`/`ACK`/`NACK` replies) and diffs against it; first contact,
//!   retries, and retransmissions fall back to full states.
//! * [`ShardCore`] — one shard of a partitioned keyspace as its own sans-io
//!   state machine: a `Replica<LatticeMap>` plus the per-shard bookkeeping
//!   (in-flight routing, fan-out legs, handoff extraction/absorption,
//!   cancel-and-re-home). Pure by construction — no channels, clocks, or
//!   sockets — so the same core is driven single-threaded by [`ShardedReplica`]
//!   and the deterministic simulator, and one-OS-thread-per-core by the
//!   `engine` crate's parallel executor.
//! * [`ShardedReplica`] — the single-threaded router over a `Vec<ShardCore>`:
//!   deterministic key routing (`quorum::Partitioner`),
//!   [`ShardEnvelope`]/[`ShardMessage`] multiplexing, epoch fencing
//!   ([`fence_decision`]), fan-out aggregation, and rebalance choreography, so
//!   non-conflicting commands on different key ranges agree in parallel.
//! * [`Driver`] — the uniform `step(now, inbox) -> outbox` surface over
//!   [`Replica`] and [`ShardedReplica`] that executors program against.
//! * [`rebalance`](crate::RebalancePlan) — dynamic resharding: the partitioner is
//!   epoch-stamped (`quorum::EpochPartitioner`) and a [`RebalancePlan`] — agreed
//!   through the ordinary protocol on a dedicated control shard — resizes the
//!   keyspace at runtime. The log-less design makes the state handoff a pure
//!   lattice join ([`Replica::absorb_state`]); an epoch fence bounces stale
//!   traffic with the plan, in-flight commands re-home exactly once
//!   ([`Replica::submit_resync`], [`Replica::cancel_in_flight`]), and per-key
//!   linearizability holds across the transition by quorum intersection.
//! * [`ProtocolConfig`] — batching, GLA-stability, payload mode, retry and
//!   retransmission knobs.
//! * [`Metrics`] — round-trip histograms, learning-path counters (Figure 3), and
//!   encoded bytes-on-the-wire per message kind ([`WireMetrics`]).
//!
//! The companion crates provide the substrates and executors: `crdt` (the data
//! types), `quorum` (quorum systems), `cluster` (deterministic simulator and
//! workloads — one driver of these state machines), `engine` (the
//! thread-per-shard parallel executor — the other driver), `transport` (tokio
//! TCP runtime), and `baselines` (Multi-Paxos and Raft used for comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acceptor;
mod config;
mod driver;
mod metrics;
mod msg;
mod pool;
mod rebalance;
mod replica;
mod round;
mod shard;
mod shard_core;

pub use acceptor::{AcceptOutcome, Acceptor};
pub use config::{PayloadMode, ProtocolConfig};
pub use driver::{Driver, StepOutput};
pub use metrics::{KindBytes, Metrics, WireMetrics};
pub use msg::{
    ClientId, ClientResponse, Command, CommandId, Envelope, Message, Payload, RequestId,
    ResponseBody,
};
pub use pool::EnvelopePool;
pub use quorum::ShardId;
pub use rebalance::{winning_shards, ControlState, PlanPartitioner, RebalancePlan, RebalanceStats};
pub use replica::{CancelledWork, Replica};
pub use round::{PrepareRound, Round, RoundId};
pub use shard::{ShardEnvelope, ShardMessage, ShardedReplica};
pub use shard_core::{
    fence_decision, CoreRehome, FenceDecision, RehomedCommand, ShardCore, ShardOutput, Stamp,
};
