//! # crdt-paxos-core — linearizable, leaderless, logless replication of CRDTs
//!
//! This crate implements the protocol of *Linearizable State Machine Replication of
//! State-Based CRDTs without Logs* (Skrzypczak, Schintke, Schütt — PODC 2019), here
//! called **CRDT Paxos** after the name used in the paper's evaluation.
//!
//! ## What the protocol gives you
//!
//! * **Linearizable** reads and updates on any state-based CRDT (`crdt::Crdt`).
//! * **No leader** — every replica accepts commands; there is no election machinery
//!   and no single bottleneck or single point of failure.
//! * **No log** — replicas store the CRDT payload plus a single round; updates modify
//!   the payload in place by joining states, so no truncation or snapshotting exists.
//! * **Updates in one round trip** — an update is applied locally and merged into a
//!   quorum with a single `MERGE`/`MERGED` exchange.
//! * **Reads in one or two round trips** in the common case — one when a *consistent
//!   quorum* is observed, two when a vote is needed; retries only under contention
//!   with concurrent updates (the paper measures > 97 % of reads within two round
//!   trips under high concurrency when batching is enabled).
//!
//! ## Crate layout
//!
//! * [`Replica`] — the sans-io state machine combining the proposer and acceptor
//!   roles; drive it with [`Replica::submit`], [`Replica::handle_message`] and
//!   [`Replica::tick`], and drain [`Replica::take_outbox`] /
//!   [`Replica::take_responses`].
//! * [`Acceptor`] — the acceptor role alone (payload + round), useful for tests.
//! * [`Message`], [`Envelope`] — the wire-level protocol messages of Algorithm 2.
//! * [`ProtocolConfig`] — batching, GLA-stability, retry and retransmission knobs.
//! * [`Metrics`] — round-trip histograms and learning-path counters (Figure 3).
//!
//! The companion crates provide the substrates: `crdt` (the data types), `quorum`
//! (quorum systems), `cluster` (deterministic simulator and workloads), `transport`
//! (tokio TCP runtime), and `baselines` (Multi-Paxos and Raft used for comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acceptor;
mod config;
mod metrics;
mod msg;
mod replica;
mod round;

pub use acceptor::{AcceptOutcome, Acceptor};
pub use config::ProtocolConfig;
pub use metrics::Metrics;
pub use msg::{
    ClientId, ClientResponse, Command, CommandId, Envelope, Message, RequestId, ResponseBody,
};
pub use replica::Replica;
pub use round::{PrepareRound, Round, RoundId};
