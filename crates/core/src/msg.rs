//! Protocol messages (Algorithm 2) and client-facing request/response types.

use crdt::{Crdt, ReplicaId};
use serde::{Deserialize, Serialize};

use crate::round::{PrepareRound, Round};

/// Identifies a protocol instance (one update round or one query attempt) at a
/// proposer. Fresh ids are allocated per attempt so stale replies can be discarded.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

/// Identifies a client session submitting commands to a proposer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

/// Correlates a client command with its eventual response.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CommandId(pub u64);

/// A replica-to-replica protocol message, generic over the replicated CRDT `C`.
///
/// Message names follow Algorithm 2: `MERGE`/`MERGED` implement the single-round-trip
/// update path, `PREPARE`/`ACK` and `VOTE`/`VOTED` implement the two-phase query path,
/// and `NACK` tells a proposer to retry. Per the optimizations of §3.6, `VOTED` omits
/// the payload state (the proposer already knows what it proposed) and `PREPARE` may
/// omit the payload when it would not grow any acceptor state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message<C: Crdt> {
    /// Update path: "join this payload into your state" (paper line 4).
    Merge {
        /// Protocol instance this message belongs to.
        request: RequestId,
        /// The proposer's payload state after applying the update locally.
        state: C,
    },
    /// Acknowledgement of a [`Message::Merge`] (paper line 35, `MERGED`).
    MergeAck {
        /// Protocol instance being acknowledged.
        request: RequestId,
    },
    /// First query phase: announce the intent to learn a state (paper line 10).
    Prepare {
        /// Protocol instance this message belongs to.
        request: RequestId,
        /// Incremental or fixed round.
        round: PrepareRound,
        /// Optional payload to speed up convergence (omitted when it equals `s0`).
        state: Option<C>,
    },
    /// Acceptor acknowledgement of a prepare (paper line 42, `ACK`).
    PrepareAck {
        /// Protocol instance being acknowledged.
        request: RequestId,
        /// The acceptor's round after processing the prepare.
        round: Round,
        /// The acceptor's payload state after processing the prepare.
        state: C,
    },
    /// Second query phase: propose a state to learn (paper line 17).
    Vote {
        /// Protocol instance this message belongs to.
        request: RequestId,
        /// The round agreed on in the first phase.
        round: Round,
        /// The proposed payload state (LUB of all first-phase payloads).
        state: C,
    },
    /// Acceptor acknowledgement of a vote (paper line 47, `VOTED`).
    ///
    /// The payload state is omitted (optimization §3.6): the proposer remembers what
    /// it proposed.
    VoteAck {
        /// Protocol instance being acknowledged.
        request: RequestId,
    },
    /// Rejection of a fixed prepare or a vote; carries the acceptor's current round
    /// and payload so the proposer can retry with more information (§3.2, "Retrying
    /// Requests").
    Nack {
        /// Protocol instance being rejected.
        request: RequestId,
        /// The acceptor's current round.
        round: Round,
        /// The acceptor's current payload state.
        state: C,
    },
}

impl<C: Crdt> Message<C> {
    /// Returns the protocol instance id the message belongs to.
    pub fn request(&self) -> RequestId {
        match self {
            Message::Merge { request, .. }
            | Message::MergeAck { request }
            | Message::Prepare { request, .. }
            | Message::PrepareAck { request, .. }
            | Message::Vote { request, .. }
            | Message::VoteAck { request }
            | Message::Nack { request, .. } => *request,
        }
    }

    /// Short, human-readable message kind (used by traces and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Merge { .. } => "MERGE",
            Message::MergeAck { .. } => "MERGED",
            Message::Prepare { .. } => "PREPARE",
            Message::PrepareAck { .. } => "ACK",
            Message::Vote { .. } => "VOTE",
            Message::VoteAck { .. } => "VOTED",
            Message::Nack { .. } => "NACK",
        }
    }
}

/// A message addressed from one replica to another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope<C: Crdt> {
    /// Sending replica.
    pub from: ReplicaId,
    /// Receiving replica.
    pub to: ReplicaId,
    /// The protocol message.
    pub message: Message<C>,
}

/// A command submitted by a client to a proposer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C::Update: Serialize, C::Query: Serialize",
    deserialize = "C::Update: Deserialize<'de>, C::Query: Deserialize<'de>"
))]
pub enum Command<C: Crdt> {
    /// An update command carrying an update function `f_u ∈ U`.
    Update(C::Update),
    /// A query command carrying a query function `f_q ∈ Q`.
    Query(C::Query),
}

/// The proposer's reply to a client command.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse<C: Crdt> {
    /// The client the response is addressed to.
    pub client: ClientId,
    /// The command being answered.
    pub command: CommandId,
    /// The actual result.
    pub body: ResponseBody<C>,
    /// Number of quorum round trips the command needed (1 for every update; 1 for a
    /// consistent-quorum read, 2 for a read by vote, more when retries were needed).
    pub round_trips: u32,
}

/// Result payload of a [`ClientResponse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody<C: Crdt> {
    /// The update has been applied on a quorum (paper line 6, `UPDATE_DONE`).
    UpdateDone,
    /// The query has learned a state and evaluated the query function on it
    /// (paper lines 15 and 24, `QUERY_DONE`).
    QueryDone(C::Output),
    /// The query exhausted the configured retry budget without learning a state.
    ///
    /// Only produced when [`crate::ProtocolConfig::max_query_retries`] is non-zero;
    /// the paper's protocol retries indefinitely.
    QueryFailed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt::GCounter;

    #[test]
    fn message_kind_and_request_accessors() {
        let state = GCounter::new();
        let request = RequestId(7);
        let messages: Vec<Message<GCounter>> = vec![
            Message::Merge { request, state: state.clone() },
            Message::MergeAck { request },
            Message::Prepare {
                request,
                round: PrepareRound::Fixed(Round::ZERO),
                state: Some(state.clone()),
            },
            Message::PrepareAck { request, round: Round::ZERO, state: state.clone() },
            Message::Vote { request, round: Round::ZERO, state: state.clone() },
            Message::VoteAck { request },
            Message::Nack { request, round: Round::ZERO, state },
        ];
        let kinds: Vec<&str> = messages.iter().map(Message::kind).collect();
        assert_eq!(kinds, ["MERGE", "MERGED", "PREPARE", "ACK", "VOTE", "VOTED", "NACK"]);
        assert!(messages.iter().all(|m| m.request() == request));
    }

    #[test]
    fn messages_survive_the_wire_format() {
        let mut state = GCounter::new();
        state.increment(ReplicaId::new(1), 5);
        let message: Message<GCounter> = Message::PrepareAck {
            request: RequestId(3),
            round: Round::new(2, crate::round::RoundId::proposer(1, ReplicaId::new(0))),
            state,
        };
        let envelope = Envelope { from: ReplicaId::new(0), to: ReplicaId::new(2), message };
        let bytes = wire::to_vec(&envelope).unwrap();
        let decoded: Envelope<GCounter> = wire::from_slice(&bytes).unwrap();
        assert_eq!(decoded, envelope);
    }

    #[test]
    fn message_overhead_is_a_single_round() {
        // The paper's claim: coordination overhead per message is a single counter.
        // A MERGE-ACK (no payload) must encode to just a handful of bytes.
        let ack: Message<GCounter> = Message::MergeAck { request: RequestId(1) };
        let bytes = wire::to_vec(&ack).unwrap();
        assert!(bytes.len() <= 3, "MergeAck encoded to {} bytes", bytes.len());
    }
}
