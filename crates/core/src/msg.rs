//! Protocol messages (Algorithm 2) and client-facing request/response types.

use crdt::{Crdt, DeltaCrdt, ReplicaId};
use serde::{Deserialize, Serialize};

use crate::round::{PrepareRound, Round};

/// Identifies a protocol instance (one update round or one query attempt) at a
/// proposer. Fresh ids are allocated per attempt so stale replies can be discarded.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

/// Identifies a client session submitting commands to a proposer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

/// Correlates a client command with its eventual response.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CommandId(pub u64);

/// The state carried by a state-bearing protocol message.
///
/// The paper ships the full CRDT state in every `MERGE`/`PREPARE`/`VOTE`; for large
/// payloads (a 64-slot counter, a populated `LatticeMap`) this is quadratic pain. A
/// proposer that knows a lower bound of the receiver's state (tracked from
/// `MERGED`/`ACK`/`NACK` replies) may instead ship a [`DeltaCrdt::delta_since`]
/// delta — see [`crate::PayloadMode`]. Joining `Full(s)` and joining `Delta(d)` into
/// an acceptor whose state contains the delta's baseline produce the same state, so
/// the protocol's safety argument is untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C: Serialize, C::Delta: Serialize",
    deserialize = "C: Deserialize<'de>, C::Delta: Deserialize<'de>"
))]
pub enum Payload<C: DeltaCrdt> {
    /// The sender's full payload state.
    Full(C),
    /// A delta covering everything the receiver is known to be missing.
    Delta(C::Delta),
}

impl<C: DeltaCrdt> Payload<C> {
    /// Joins the payload's content into `state` (full join or delta application).
    pub fn join_into(&self, state: &mut C) {
        match self {
            Payload::Full(full) => state.join(full),
            Payload::Delta(delta) => state.apply_delta(delta),
        }
    }

    /// Returns `true` if this payload is a delta.
    pub fn is_delta(&self) -> bool {
        matches!(self, Payload::Delta(_))
    }

    /// Short label used by traces and byte-accounting reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Full(_) => "full",
            Payload::Delta(_) => "delta",
        }
    }
}

/// A replica-to-replica protocol message, generic over the replicated CRDT `C`.
///
/// Message names follow Algorithm 2: `MERGE`/`MERGED` implement the single-round-trip
/// update path, `PREPARE`/`ACK` and `VOTE`/`VOTED` implement the two-phase query path,
/// and `NACK` tells a proposer to retry. Per the optimizations of §3.6, `VOTED` omits
/// the payload state (the proposer already knows what it proposed) and `PREPARE` may
/// omit the payload when it would not grow any acceptor state.
///
/// State-bearing messages carry a [`Payload`] — either the full state (as in the
/// paper) or a delta (Almeida et al.), depending on [`crate::PayloadMode`] and on
/// what the proposer knows about the receiver. Replies (`ACK`, `NACK`) carry a
/// [`Payload`] too: in delta mode the acceptor diffs its post-join state against a
/// baseline both sides hold **exactly** — the content of the very request being
/// answered, joined with the acceptor-state snapshot whose `reveal` sequence number
/// the request echoed back (`basis`). Exactness matters: the proposer's
/// consistent-quorum check compares acceptor states for equality, so reply deltas
/// must reconstruct to the acceptor's precise state, not a lower or upper bound.
/// Replies without a usable baseline, and all replies in the paper-faithful full
/// mode, ship the acceptor's full state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C: Serialize, C::Delta: Serialize",
    deserialize = "C: Deserialize<'de>, C::Delta: Deserialize<'de>"
))]
pub enum Message<C: Crdt + DeltaCrdt> {
    /// Update path: "join this payload into your state" (paper line 4).
    Merge {
        /// Protocol instance this message belongs to.
        request: RequestId,
        /// The proposer's payload state after applying the update locally (full or
        /// as a delta on top of what the receiver is known to hold).
        payload: Payload<C>,
    },
    /// Acknowledgement of a [`Message::Merge`] (paper line 35, `MERGED`).
    MergeAck {
        /// Protocol instance being acknowledged.
        request: RequestId,
    },
    /// First query phase: announce the intent to learn a state (paper line 10).
    Prepare {
        /// Protocol instance this message belongs to.
        request: RequestId,
        /// Incremental or fixed round.
        round: PrepareRound,
        /// Optional payload to speed up convergence (omitted when it equals `s0`).
        payload: Option<Payload<C>>,
        /// Reveal sequence number of the receiver's newest state snapshot this
        /// proposer holds (delta-mode reply handshake, see [`Message::PrepareAck`]);
        /// `0` when none is held or delta payloads are disabled.
        basis: u64,
    },
    /// Acceptor acknowledgement of a prepare (paper line 42, `ACK`).
    PrepareAck {
        /// Protocol instance being acknowledged.
        request: RequestId,
        /// The acceptor's round after processing the prepare.
        round: Round,
        /// The acceptor's payload state after processing the prepare — full, or (in
        /// delta mode) a delta against `content(request payload) ⊔ snapshot(basis)`,
        /// both of which the proposer holds exactly.
        state: Payload<C>,
        /// Sequence number under which the acceptor remembers the revealed state, so
        /// the proposer can echo it as the `basis` of future requests (0 = none).
        reveal: u64,
        /// The reveal sequence number whose snapshot the delta was diffed against
        /// (0 = the request's own payload content only).
        basis: u64,
    },
    /// Second query phase: propose a state to learn (paper line 17).
    Vote {
        /// Protocol instance this message belongs to.
        request: RequestId,
        /// The round agreed on in the first phase.
        round: Round,
        /// The proposed payload state (LUB of all first-phase payloads).
        payload: Payload<C>,
        /// Reveal sequence echo, as in [`Message::Prepare`] (0 = none).
        basis: u64,
    },
    /// Acceptor acknowledgement of a vote (paper line 47, `VOTED`).
    ///
    /// The payload state is omitted (optimization §3.6): the proposer remembers what
    /// it proposed.
    VoteAck {
        /// Protocol instance being acknowledged.
        request: RequestId,
    },
    /// Rejection of a fixed prepare or a vote; carries the acceptor's current round
    /// and payload so the proposer can retry with more information (§3.2, "Retrying
    /// Requests").
    Nack {
        /// Protocol instance being rejected.
        request: RequestId,
        /// The acceptor's current round.
        round: Round,
        /// The acceptor's current payload state — full, or (for vote rejections in
        /// delta mode) a delta against the `VOTE`'s own payload and basis snapshot.
        state: Payload<C>,
        /// The reveal sequence number whose snapshot the delta was diffed against
        /// (0 = the request's own payload content only).
        basis: u64,
    },
}

impl<C: Crdt + DeltaCrdt> Message<C> {
    /// Returns the protocol instance id the message belongs to.
    pub fn request(&self) -> RequestId {
        match self {
            Message::Merge { request, .. }
            | Message::MergeAck { request }
            | Message::Prepare { request, .. }
            | Message::PrepareAck { request, .. }
            | Message::Vote { request, .. }
            | Message::VoteAck { request }
            | Message::Nack { request, .. } => *request,
        }
    }

    /// Short, human-readable message kind (used by traces, tests, and the wire
    /// byte-accounting reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Merge { .. } => "MERGE",
            Message::MergeAck { .. } => "MERGED",
            Message::Prepare { .. } => "PREPARE",
            Message::PrepareAck { .. } => "ACK",
            Message::Vote { .. } => "VOTE",
            Message::VoteAck { .. } => "VOTED",
            Message::Nack { .. } => "NACK",
        }
    }

    /// The byte-accounting key: the message kind with the payload
    /// representation appended for state-bearing messages ("MERGE:full" /
    /// "MERGE:delta"). Every combination maps to a static string so hot-loop
    /// accounting never allocates per message.
    pub fn wire_kind(&self) -> &'static str {
        match (self, self.payload()) {
            (_, None) => self.kind(),
            (Message::Merge { .. }, Some(Payload::Full(_))) => "MERGE:full",
            (Message::Merge { .. }, Some(Payload::Delta(_))) => "MERGE:delta",
            (Message::Prepare { .. }, Some(Payload::Full(_))) => "PREPARE:full",
            (Message::Prepare { .. }, Some(Payload::Delta(_))) => "PREPARE:delta",
            (Message::PrepareAck { .. }, Some(Payload::Full(_))) => "ACK:full",
            (Message::PrepareAck { .. }, Some(Payload::Delta(_))) => "ACK:delta",
            (Message::Vote { .. }, Some(Payload::Full(_))) => "VOTE:full",
            (Message::Vote { .. }, Some(Payload::Delta(_))) => "VOTE:delta",
            (Message::Nack { .. }, Some(Payload::Full(_))) => "NACK:full",
            (Message::Nack { .. }, Some(Payload::Delta(_))) => "NACK:delta",
            (Message::MergeAck { .. } | Message::VoteAck { .. }, Some(_)) => {
                unreachable!("acks carry no payload")
            }
        }
    }

    /// The byte-accounting key for control-shard traffic: [`Message::kind`]
    /// with a `CTRL:` prefix, as a static string so accounting never
    /// allocates per message.
    pub fn ctrl_wire_kind(&self) -> &'static str {
        match self {
            Message::Merge { .. } => "CTRL:MERGE",
            Message::MergeAck { .. } => "CTRL:MERGED",
            Message::Prepare { .. } => "CTRL:PREPARE",
            Message::PrepareAck { .. } => "CTRL:ACK",
            Message::Vote { .. } => "CTRL:VOTE",
            Message::VoteAck { .. } => "CTRL:VOTED",
            Message::Nack { .. } => "CTRL:NACK",
        }
    }

    /// The payload carried by a state-bearing message (request or reply), if any.
    pub fn payload(&self) -> Option<&Payload<C>> {
        match self {
            Message::Merge { payload, .. } | Message::Vote { payload, .. } => Some(payload),
            Message::Prepare { payload, .. } => payload.as_ref(),
            Message::PrepareAck { state, .. } | Message::Nack { state, .. } => Some(state),
            Message::MergeAck { .. } | Message::VoteAck { .. } => None,
        }
    }
}

/// A message addressed from one replica to another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C: Serialize, C::Delta: Serialize",
    deserialize = "C: Deserialize<'de>, C::Delta: Deserialize<'de>"
))]
pub struct Envelope<C: Crdt + DeltaCrdt> {
    /// Sending replica.
    pub from: ReplicaId,
    /// Receiving replica.
    pub to: ReplicaId,
    /// The protocol message.
    pub message: Message<C>,
}

/// A command submitted by a client to a proposer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "C::Update: Serialize, C::Query: Serialize",
    deserialize = "C::Update: Deserialize<'de>, C::Query: Deserialize<'de>"
))]
pub enum Command<C: Crdt> {
    /// An update command carrying an update function `f_u ∈ U`.
    Update(C::Update),
    /// A query command carrying a query function `f_q ∈ Q`.
    Query(C::Query),
}

/// The proposer's reply to a client command.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse<C: Crdt> {
    /// The client the response is addressed to.
    pub client: ClientId,
    /// The command being answered.
    pub command: CommandId,
    /// The actual result.
    pub body: ResponseBody<C>,
    /// Number of quorum round trips the command needed (1 for every update; 1 for a
    /// consistent-quorum read, 2 for a read by vote, more when retries were needed).
    pub round_trips: u32,
}

/// Result payload of a [`ClientResponse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody<C: Crdt> {
    /// The update has been applied on a quorum (paper line 6, `UPDATE_DONE`).
    UpdateDone,
    /// The query has learned a state and evaluated the query function on it
    /// (paper lines 15 and 24, `QUERY_DONE`).
    QueryDone(C::Output),
    /// The query exhausted the configured retry budget without learning a state.
    ///
    /// Only produced when [`crate::ProtocolConfig::max_query_retries`] is non-zero;
    /// the paper's protocol retries indefinitely.
    QueryFailed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdt::GCounter;

    #[test]
    fn message_kind_and_request_accessors() {
        let state = GCounter::new();
        let request = RequestId(7);
        let messages: Vec<Message<GCounter>> = vec![
            Message::Merge { request, payload: Payload::Full(state.clone()) },
            Message::MergeAck { request },
            Message::Prepare {
                request,
                round: PrepareRound::Fixed(Round::ZERO),
                payload: Some(Payload::Full(state.clone())),
                basis: 0,
            },
            Message::PrepareAck {
                request,
                round: Round::ZERO,
                state: Payload::Full(state.clone()),
                reveal: 0,
                basis: 0,
            },
            Message::Vote {
                request,
                round: Round::ZERO,
                payload: Payload::Full(state.clone()),
                basis: 0,
            },
            Message::VoteAck { request },
            Message::Nack { request, round: Round::ZERO, state: Payload::Full(state), basis: 0 },
        ];
        let kinds: Vec<&str> = messages.iter().map(Message::kind).collect();
        assert_eq!(kinds, ["MERGE", "MERGED", "PREPARE", "ACK", "VOTE", "VOTED", "NACK"]);
        assert!(messages.iter().all(|m| m.request() == request));
    }

    #[test]
    fn messages_survive_the_wire_format() {
        let mut state = GCounter::new();
        state.increment(ReplicaId::new(1), 5);
        let message: Message<GCounter> = Message::PrepareAck {
            request: RequestId(3),
            round: Round::new(2, crate::round::RoundId::proposer(1, ReplicaId::new(0))),
            state: Payload::Full(state),
            reveal: 7,
            basis: 3,
        };
        let envelope = Envelope { from: ReplicaId::new(0), to: ReplicaId::new(2), message };
        let bytes = wire::to_vec(&envelope).unwrap();
        let decoded: Envelope<GCounter> = wire::from_slice(&bytes).unwrap();
        assert_eq!(decoded, envelope);
    }

    #[test]
    fn delta_payloads_survive_the_wire_format() {
        let mut state = GCounter::new();
        let delta = state.increment_delta(ReplicaId::new(2), 9);
        let message: Message<GCounter> =
            Message::Merge { request: RequestId(11), payload: Payload::Delta(delta) };
        let bytes = wire::to_vec(&message).unwrap();
        let decoded: Message<GCounter> = wire::from_slice(&bytes).unwrap();
        assert_eq!(decoded, message);
        assert!(decoded.payload().unwrap().is_delta());
    }

    #[test]
    fn message_overhead_is_a_single_round() {
        // The paper's claim: coordination overhead per message is a single counter.
        // A MERGE-ACK (no payload) must encode to just a handful of bytes.
        let ack: Message<GCounter> = Message::MergeAck { request: RequestId(1) };
        let bytes = wire::to_vec(&ack).unwrap();
        assert!(bytes.len() <= 3, "MergeAck encoded to {} bytes", bytes.len());
    }

    #[test]
    fn payload_join_into_is_equivalent_for_full_and_delta() {
        let mut sender = GCounter::new();
        sender.increment(ReplicaId::new(0), 3);
        let known = sender.clone();
        sender.increment(ReplicaId::new(0), 2);

        let mut via_full = known.clone();
        Payload::Full(sender.clone()).join_into(&mut via_full);
        let mut via_delta = known.clone();
        Payload::<GCounter>::Delta(sender.delta_since(&known)).join_into(&mut via_delta);
        assert_eq!(via_full, via_delta);
        assert_eq!(via_full.value(), 5);
    }
}
