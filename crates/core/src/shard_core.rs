//! One shard's sans-IO core: a protocol instance plus the bookkeeping that maps
//! its command ids back to the sharded engine's command ids.
//!
//! [`ShardCore`] is the unit both execution models drive. The single-threaded
//! router ([`crate::ShardedReplica`]) owns a `Vec<ShardCore>` and steps them in
//! shard order; the thread-per-shard executor (`crates/engine`) moves each core
//! onto its own OS thread and feeds it through a mailbox. The core itself is a
//! pure state machine — no channels, clocks, or sockets: inputs arrive as method
//! calls (`handle_message`, `submit_single`, `tick`), outputs are drained as
//! value batches ([`ShardCore::drain_outbox_into`],
//! [`ShardCore::drain_outputs`]) — so the two drivers are behaviourally
//! interchangeable, and the deterministic simulator exercises exactly the code
//! the parallel engine runs.
//!
//! The rebalance-facing methods ([`ShardCore::cancel_and_rehome`],
//! [`ShardCore::extract_moves`], [`ShardCore::absorb_moved`],
//! [`ShardCore::begin_resync`], [`ShardCore::purge_fanout_legs`]) are the
//! per-shard halves of a plan installation; the choreography that sequences
//! them — and the epoch fence deciding when a message may reach a core at all
//! ([`fence_decision`]) — belongs to whichever driver owns the stamp.

use std::collections::BTreeMap;
use std::fmt;

use crdt::{Crdt, DeltaCrdt, LatticeMap, MapOutput, MapQuery, ReplicaId};
use quorum::ShardId;

use crate::config::ProtocolConfig;
use crate::metrics::Metrics;
use crate::msg::{ClientId, ClientResponse, Command, CommandId, Envelope, Message, ResponseBody};
use crate::replica::Replica;
use crate::shard::{ShardEnvelope, ShardMessage};

/// One partitioning assignment's identity: `(epoch, shard count)`, ordered
/// lexicographically. Within an epoch the larger shard count supersedes (the
/// same growth bias as [`crate::rebalance::winning_shards`]).
pub type Stamp = (u64, u32);

/// What the epoch fence decides about one stamped protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceDecision {
    /// Stamps match: deliver the message to its shard core.
    Process,
    /// The sender routes by a superseded assignment: do not process (its data
    /// would bypass the handoff copies); answer with the current plan instead.
    Bounce,
    /// The sender is ahead: buffer the message until its plan installs here,
    /// and ask the sender for the plan (the one-shot gossip may have been lost).
    Defer,
}

/// The assignment fence: compares a message's stamp against the receiver's.
///
/// Both drivers route every incoming protocol message through this before it
/// can reach a [`ShardCore`] — the single-threaded router inline, the parallel
/// engine in its per-node ingress thread. Comparing full `(epoch, shards)`
/// stamps (not just epochs) keeps racing same-epoch assignments fenced from
/// each other, so mixed-assignment quorums can never form.
pub fn fence_decision(current: Stamp, incoming: Stamp) -> FenceDecision {
    match incoming.cmp(&current) {
        std::cmp::Ordering::Less => FenceDecision::Bounce,
        std::cmp::Ordering::Greater => FenceDecision::Defer,
        std::cmp::Ordering::Equal => FenceDecision::Process,
    }
}

/// What a completed inner command maps back to at the sharded layer.
#[derive(Debug, Clone)]
enum Pending<K> {
    /// A single-shard command; answer with the outer command id. The key is
    /// kept so a rebalance can re-home the work onto the key's new owner shard
    /// (the command payload itself is reclaimed from the instance at cancel
    /// time).
    Single { command: CommandId, key: K },
    /// One leg of a keyspace-wide fan-out query.
    FanoutLeg { command: CommandId },
}

/// One output of [`ShardCore::drain_outputs`]: either a finished single-shard
/// command (already translated to the outer command id) or one leg of a
/// keyspace-wide fan-out, which the driver aggregates across shards.
#[derive(Debug)]
pub enum ShardOutput<K, V>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
{
    /// A completed single-shard command.
    Response(ClientResponse<LatticeMap<K, V>>),
    /// One shard's answer to a fan-out leg. `keys` is the shard's **unfiltered**
    /// key list (`None` if the leg failed); the aggregating driver filters it to
    /// the keys the shard owns under the current assignment, because handed-off
    /// ranges leave stale lower-bound copies behind at their source.
    FanoutLeg {
        /// The outer (fan-out) command id this leg belongs to.
        command: CommandId,
        /// The shard that answered.
        shard: ShardId,
        /// Round trips this leg took (the slowest leg is the fan-out's latency).
        round_trips: u32,
        /// The shard's key list, or `None` if the leg failed.
        keys: Option<Vec<K>>,
    },
}

/// One command reclaimed by a rebalance for plain resubmission: the client,
/// the outer command id, and the unapplied command itself.
pub type RehomedCommand<K, V> = (ClientId, CommandId, Command<LatticeMap<K, V>>);

/// The in-flight work a rebalance reclaimed from one core, translated to outer
/// command ids and ready to be re-homed under the new assignment.
#[derive(Debug, Default)]
pub struct CoreRehome<K, V>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
{
    /// Updates already applied to the local acceptor: their effects travel in
    /// the handoff copies, so they complete exactly once via a resync on the
    /// key's new owner ([`ShardCore::begin_resync`]).
    pub applied: Vec<(ClientId, CommandId, K)>,
    /// Unapplied updates and queries, handed back with their payloads: the
    /// driver simply resubmits them on the new owner shard.
    pub resubmit: Vec<RehomedCommand<K, V>>,
}

/// One shard's pure sans-IO core: the protocol instance (acceptor + proposer)
/// plus the inner→outer command-id bookkeeping, with no execution policy.
///
/// Everything timing- or transport-shaped lives in the driver: the core is
/// advanced by method calls and drained by value. See the module docs for the
/// two drivers and the split of rebalance responsibilities.
#[derive(Debug)]
pub struct ShardCore<K, V>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
{
    shard: ShardId,
    replica: Replica<LatticeMap<K, V>>,
    pending: BTreeMap<CommandId, Pending<K>>,
    /// Reused drain buffer for the instance outbox (no per-cycle allocs).
    scratch: Vec<Envelope<LatticeMap<K, V>>>,
}

impl<K, V> ShardCore<K, V>
where
    K: Ord + Clone + fmt::Debug + Send + 'static,
    V: Crdt + DeltaCrdt,
{
    /// Creates the core of shard `shard` for replica `id`.
    pub fn new(
        shard: ShardId,
        id: ReplicaId,
        members: Vec<ReplicaId>,
        config: ProtocolConfig,
    ) -> Self {
        ShardCore {
            shard,
            replica: Replica::new(id, members, LatticeMap::default(), config),
            pending: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The shard this core serves.
    pub fn shard_id(&self) -> ShardId {
        self.shard
    }

    /// Read access to the wrapped protocol instance (metrics, local state).
    pub fn replica(&self) -> &Replica<LatticeMap<K, V>> {
        &self.replica
    }

    /// The local acceptor's payload state.
    pub fn local_state(&self) -> &LatticeMap<K, V> {
        self.replica.local_state()
    }

    /// Protocol instances currently in flight on this core.
    pub fn in_flight(&self) -> usize {
        self.replica.in_flight()
    }

    /// Proposer metrics of this core's instance.
    pub fn metrics(&self) -> &Metrics {
        self.replica.metrics()
    }

    /// Records the encoded size of one outgoing message (wire accounting).
    pub fn record_wire_bytes(&mut self, kind: &'static str, bytes: u64) {
        self.replica.record_wire_bytes(kind, bytes);
    }

    /// Replaces the replica group of this core's instance.
    pub fn update_membership(&mut self, members: Vec<ReplicaId>) {
        self.replica.update_membership(members);
    }

    /// Submits a single-key command under the outer id `outer`. The driver has
    /// already routed the command here; `key` is retained so a later rebalance
    /// can re-home the work onto the key's new owner.
    pub fn submit_single(
        &mut self,
        client: ClientId,
        outer: CommandId,
        key: K,
        command: Command<LatticeMap<K, V>>,
    ) {
        let inner = self.replica.submit(client, command);
        self.pending.insert(inner, Pending::Single { command: outer, key });
    }

    /// Submits one leg of the keyspace-wide fan-out `outer`.
    ///
    /// Legs always ask for the shard's key list — even when the fan-out is a
    /// `Len` — because the aggregate must filter each answer down to the keys
    /// the shard currently owns (see [`ShardOutput::FanoutLeg`]).
    pub fn submit_fanout_leg(&mut self, client: ClientId, outer: CommandId) {
        let inner = self.replica.submit(client, Command::Query(MapQuery::Keys));
        self.pending.insert(inner, Pending::FanoutLeg { command: outer });
    }

    /// Delivers one protocol message from a peer's same-shard instance. The
    /// driver has already passed the message through the epoch fence
    /// ([`fence_decision`]).
    pub fn handle_message(&mut self, from: ReplicaId, message: Message<LatticeMap<K, V>>) {
        self.replica.handle_message(from, message);
    }

    /// [`ShardCore::handle_message`] over a borrowed message — the
    /// allocation-free entry point for frames decoded into a worker scratch.
    pub fn handle_message_mut(&mut self, from: ReplicaId, message: &mut Message<LatticeMap<K, V>>) {
        self.replica.handle_message_mut(from, message);
    }

    /// Advances this core's notion of time (batch flushes, retransmissions).
    pub fn tick(&mut self, now_ms: u64) {
        self.replica.tick(now_ms);
    }

    /// Drains the instance's outgoing messages into `sink`, wrapping each in a
    /// [`ShardMessage::Protocol`] stamped with the driver's current assignment.
    pub fn drain_outbox_into(
        &mut self,
        stamp: Stamp,
        sink: &mut Vec<ShardEnvelope<LatticeMap<K, V>>>,
    ) {
        let (epoch, shards) = stamp;
        self.replica.drain_outbox_into(&mut self.scratch);
        sink.extend(self.scratch.drain(..).map(|envelope| ShardEnvelope {
            from: envelope.from,
            to: envelope.to,
            message: ShardMessage::Protocol {
                epoch,
                shards,
                shard: self.shard,
                message: envelope.message,
            },
        }));
    }

    /// Drains the instance's completed commands into `out`, translating inner
    /// command ids back to outer ones. Responses whose pending entry is gone
    /// (purged fan-out legs, cancelled resyncs) are absorbed silently.
    pub fn drain_outputs(&mut self, out: &mut Vec<ShardOutput<K, V>>) {
        for response in self.replica.take_responses() {
            let Some(pending) = self.pending.remove(&response.command) else {
                continue;
            };
            match pending {
                Pending::Single { command, .. } => {
                    out.push(ShardOutput::Response(ClientResponse {
                        client: response.client,
                        command,
                        body: response.body,
                        round_trips: response.round_trips,
                    }));
                }
                Pending::FanoutLeg { command } => {
                    let keys = match response.body {
                        ResponseBody::QueryDone(MapOutput::Keys(keys)) => Some(keys),
                        _ => None,
                    };
                    out.push(ShardOutput::FanoutLeg {
                        command,
                        shard: self.shard,
                        round_trips: response.round_trips,
                        keys,
                    });
                }
            }
        }
    }

    /// Cancels every in-flight command on this core and hands the reclaimed
    /// work back for re-homing under a new assignment (the cutover half of a
    /// plan installation). Fan-out legs are dropped — the driver restarts its
    /// fan-outs wholesale against the new shard set.
    pub fn cancel_and_rehome(&mut self) -> CoreRehome<K, V> {
        let mut rehome = CoreRehome { applied: Vec::new(), resubmit: Vec::new() };
        let cancelled = self.replica.cancel_in_flight();
        for (client, inner) in cancelled.applied_updates {
            if let Some(Pending::Single { command, key }) = self.pending.remove(&inner) {
                rehome.applied.push((client, command, key));
            }
            // `None` is a cancelled waiterless resync: nothing to re-home.
        }
        for (client, inner, update) in cancelled.unapplied_updates {
            if let Some(Pending::Single { command, .. }) = self.pending.remove(&inner) {
                rehome.resubmit.push((client, command, Command::Update(update)));
            }
        }
        for (client, inner, query) in cancelled.queries {
            match self.pending.remove(&inner) {
                Some(Pending::Single { command, .. }) => {
                    rehome.resubmit.push((client, command, Command::Query(query)));
                }
                // Fan-out legs restart wholesale at the driver.
                Some(Pending::FanoutLeg { .. }) | None => {}
            }
        }
        rehome
    }

    /// The sub-states a new assignment routes away from this core, grouped by
    /// destination shard (`owner_of` is the new partitioner). Nothing is
    /// deleted at the source — the log-less design needs no truncation, and
    /// stale copies are lower bounds a future move-back absorbs.
    pub fn extract_moves(
        &self,
        mut owner_of: impl FnMut(&K) -> ShardId,
    ) -> Vec<(ShardId, LatticeMap<K, V>)> {
        let mut moves: BTreeMap<u32, LatticeMap<K, V>> = BTreeMap::new();
        for (key, value) in self.local_state().iter() {
            let destination = owner_of(key);
            if destination != self.shard {
                moves.entry(destination.as_u32()).or_default().merge_entry(key.clone(), value);
            }
        }
        moves.into_iter().map(|(shard, sub)| (ShardId(shard), sub)).collect()
    }

    /// Grafts a handed-off key range into this core's acceptor by lattice join
    /// (the destination half of a state handoff).
    pub fn absorb_moved(&mut self, sub: &LatticeMap<K, V>) {
        self.replica.absorb_state(sub);
    }

    /// Starts the resync instance that makes this core's freshly handed-off
    /// ranges quorum-durable, completing the given cut-over updates exactly
    /// once (their effects are already contained in the absorbed copies).
    pub fn begin_resync(&mut self, rehomed: Vec<(ClientId, CommandId, K)>) {
        let clients: Vec<ClientId> = rehomed.iter().map(|(client, _, _)| *client).collect();
        let inner_ids = self.replica.submit_resync(&clients);
        for ((_, outer, key), inner) in rehomed.into_iter().zip(inner_ids) {
            self.pending.insert(inner, Pending::Single { command: outer, key });
        }
    }

    /// Forgets every fan-out-leg mapping. Run before restarting fan-outs after
    /// a plan install: legs that completed with their responses still buffered
    /// in the instance must not leak into the restarted aggregate.
    pub fn purge_fanout_legs(&mut self) {
        self.pending.retain(|_, pending| !matches!(pending, Pending::FanoutLeg { .. }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crdt::{CounterUpdate, GCounter, MapUpdate};

    fn core(shard: u32) -> ShardCore<String, GCounter> {
        let members: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
        ShardCore::new(ShardId(shard), ReplicaId::new(0), members, ProtocolConfig::default())
    }

    #[test]
    fn fence_orders_full_stamps_lexicographically() {
        assert_eq!(fence_decision((1, 4), (1, 4)), FenceDecision::Process);
        assert_eq!(fence_decision((1, 4), (0, 8)), FenceDecision::Bounce);
        assert_eq!(fence_decision((1, 4), (1, 2)), FenceDecision::Bounce);
        assert_eq!(fence_decision((1, 4), (1, 8)), FenceDecision::Defer);
        assert_eq!(fence_decision((1, 4), (2, 1)), FenceDecision::Defer);
    }

    #[test]
    fn outputs_carry_outer_command_ids() {
        let mut core = core(0);
        core.submit_single(
            ClientId(7),
            CommandId(42),
            "k".to_string(),
            Command::Update(MapUpdate::Apply {
                key: "k".to_string(),
                update: CounterUpdate::Increment(1),
            }),
        );
        // Outgoing merges are stamped with the driver's assignment.
        let mut outbox = Vec::new();
        core.drain_outbox_into((0, 2), &mut outbox);
        assert!(!outbox.is_empty());
        for envelope in &outbox {
            assert!(matches!(
                envelope.message,
                ShardMessage::Protocol { epoch: 0, shards: 2, shard: ShardId(0), .. }
            ));
        }
        // Complete the quorum by acking from both peers.
        for envelope in outbox {
            if let ShardMessage::Protocol { message: Message::Merge { request, .. }, .. } =
                envelope.message
            {
                core.handle_message(envelope.to, Message::MergeAck { request });
            }
        }
        let mut out = Vec::new();
        core.drain_outputs(&mut out);
        assert_eq!(out.len(), 1);
        match &out[0] {
            ShardOutput::Response(response) => {
                assert_eq!(response.command, CommandId(42));
                assert_eq!(response.client, ClientId(7));
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn cancel_returns_applied_updates_for_rehoming() {
        let mut core = core(0);
        core.submit_single(
            ClientId(1),
            CommandId(5),
            "k".to_string(),
            Command::Update(MapUpdate::Apply {
                key: "k".to_string(),
                update: CounterUpdate::Increment(3),
            }),
        );
        let rehome = core.cancel_and_rehome();
        assert_eq!(rehome.applied.len(), 1);
        let (client, outer, key) = &rehome.applied[0];
        assert_eq!((*client, *outer, key.as_str()), (ClientId(1), CommandId(5), "k"));
        assert!(rehome.resubmit.is_empty());
    }

    #[test]
    fn extract_moves_groups_disowned_keys_by_destination() {
        let mut core = core(0);
        let mut sub = LatticeMap::<String, GCounter>::default();
        let mut counter = GCounter::new();
        counter.increment(ReplicaId::new(0), 1);
        sub.merge_entry("a".to_string(), &counter);
        sub.merge_entry("b".to_string(), &counter);
        core.absorb_moved(&sub);

        // A partitioner that disowns everything, alternating destinations.
        let moves = core.extract_moves(|key| if key == "a" { ShardId(1) } else { ShardId(2) });
        assert_eq!(moves.len(), 2);
        assert_eq!(moves[0].0, ShardId(1));
        assert!(moves[0].1.get(&"a".to_string()).is_some());
        assert_eq!(moves[1].0, ShardId(2));
        assert!(moves[1].1.get(&"b".to_string()).is_some());

        // A partitioner that keeps everything home moves nothing.
        assert!(core.extract_moves(|_| ShardId(0)).is_empty());
    }
}
