//! LEB128 variable-length integer encoding.
//!
//! Unsigned integers are encoded 7 bits at a time, least-significant group first, with
//! the high bit of each byte acting as a continuation flag. Signed integers are
//! zig-zag mapped to unsigned integers first so that small negative numbers stay small.

use crate::error::{Error, Result};
use crate::sink::Sink;

/// Maximum number of bytes a `u64` varint may occupy.
pub const MAX_VARINT64_LEN: usize = 10;
/// Maximum number of bytes a `u128` varint may occupy.
pub const MAX_VARINT128_LEN: usize = 19;

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn encode_u64<S: Sink>(mut value: u64, out: &mut S) {
    loop {
        let mut byte = (value & 0x7f) as u8;
        value >>= 7;
        if value != 0 {
            byte |= 0x80;
        }
        out.put_byte(byte);
        if value == 0 {
            break;
        }
    }
}

/// Appends `value` to `out` as an unsigned LEB128 varint (128-bit variant).
pub fn encode_u128<S: Sink>(mut value: u128, out: &mut S) {
    loop {
        let mut byte = (value & 0x7f) as u8;
        value >>= 7;
        if value != 0 {
            byte |= 0x80;
        }
        out.put_byte(byte);
        if value == 0 {
            break;
        }
    }
}

/// Appends `value` to `out` using zig-zag + LEB128 encoding.
pub fn encode_i64<S: Sink>(value: i64, out: &mut S) {
    encode_u64(zigzag_encode_64(value), out);
}

/// Appends `value` to `out` using zig-zag + LEB128 encoding (128-bit variant).
pub fn encode_i128<S: Sink>(value: i128, out: &mut S) {
    encode_u128(zigzag_encode_128(value), out);
}

/// Decodes an unsigned varint from the front of `input`, advancing the slice.
///
/// # Errors
///
/// Returns [`Error::UnexpectedEof`] if the input ends mid-varint and
/// [`Error::VarintOverflow`] if more than [`MAX_VARINT64_LEN`] bytes are used.
pub fn decode_u64(input: &mut &[u8]) -> Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT64_LEN {
        let byte = *input.get(i).ok_or(Error::UnexpectedEof)?;
        let low = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(Error::VarintOverflow);
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(result);
        }
        shift += 7;
    }
    Err(Error::VarintOverflow)
}

/// Decodes an unsigned 128-bit varint from the front of `input`, advancing the slice.
///
/// # Errors
///
/// Returns [`Error::UnexpectedEof`] if the input ends mid-varint and
/// [`Error::VarintOverflow`] if more than [`MAX_VARINT128_LEN`] bytes are used.
pub fn decode_u128(input: &mut &[u8]) -> Result<u128> {
    let mut result: u128 = 0;
    let mut shift = 0u32;
    for i in 0..MAX_VARINT128_LEN {
        let byte = *input.get(i).ok_or(Error::UnexpectedEof)?;
        let low = u128::from(byte & 0x7f);
        if shift >= 128 || (shift == 126 && low > 3) {
            return Err(Error::VarintOverflow);
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(result);
        }
        shift += 7;
    }
    Err(Error::VarintOverflow)
}

/// Decodes a zig-zag encoded signed varint from the front of `input`.
///
/// # Errors
///
/// Same error conditions as [`decode_u64`].
pub fn decode_i64(input: &mut &[u8]) -> Result<i64> {
    Ok(zigzag_decode_64(decode_u64(input)?))
}

/// Decodes a zig-zag encoded signed 128-bit varint from the front of `input`.
///
/// # Errors
///
/// Same error conditions as [`decode_u128`].
pub fn decode_i128(input: &mut &[u8]) -> Result<i128> {
    Ok(zigzag_decode_128(decode_u128(input)?))
}

/// Maps a signed integer to an unsigned integer so small magnitudes encode compactly.
pub fn zigzag_encode_64(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode_64`].
pub fn zigzag_decode_64(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Maps a signed 128-bit integer to an unsigned integer.
pub fn zigzag_encode_128(value: i128) -> u128 {
    ((value << 1) ^ (value >> 127)) as u128
}

/// Inverse of [`zigzag_encode_128`].
pub fn zigzag_decode_128(value: u128) -> i128 {
    ((value >> 1) as i128) ^ -((value & 1) as i128)
}

/// Returns the number of bytes [`encode_u64`] would use for `value`.
pub fn encoded_len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u64(value: u64) -> u64 {
        let mut buf = Vec::new();
        encode_u64(value, &mut buf);
        assert_eq!(buf.len(), encoded_len_u64(value));
        let mut slice = buf.as_slice();
        let decoded = decode_u64(&mut slice).unwrap();
        assert!(slice.is_empty());
        decoded
    }

    #[test]
    fn u64_roundtrip_boundaries() {
        for value in
            [0, 1, 127, 128, 255, 256, 16383, 16384, u32::MAX as u64, u64::MAX - 1, u64::MAX]
        {
            assert_eq!(roundtrip_u64(value), value);
        }
    }

    #[test]
    fn i64_roundtrip_boundaries() {
        for value in [0, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            encode_i64(value, &mut buf);
            let mut slice = buf.as_slice();
            assert_eq!(decode_i64(&mut slice).unwrap(), value);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn u128_roundtrip_boundaries() {
        for value in [0u128, 1, u64::MAX as u128, u128::MAX - 1, u128::MAX] {
            let mut buf = Vec::new();
            encode_u128(value, &mut buf);
            let mut slice = buf.as_slice();
            assert_eq!(decode_u128(&mut slice).unwrap(), value);
        }
    }

    #[test]
    fn i128_roundtrip_boundaries() {
        for value in [0i128, -1, 1, i128::MAX, i128::MIN] {
            let mut buf = Vec::new();
            encode_i128(value, &mut buf);
            let mut slice = buf.as_slice();
            assert_eq!(decode_i128(&mut slice).unwrap(), value);
        }
    }

    #[test]
    fn small_values_use_one_byte() {
        for value in 0..128u64 {
            let mut buf = Vec::new();
            encode_u64(value, &mut buf);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn zigzag_orders_small_magnitudes_first() {
        assert_eq!(zigzag_encode_64(0), 0);
        assert_eq!(zigzag_encode_64(-1), 1);
        assert_eq!(zigzag_encode_64(1), 2);
        assert_eq!(zigzag_encode_64(-2), 3);
        assert_eq!(zigzag_decode_64(zigzag_encode_64(i64::MIN)), i64::MIN);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut buf = Vec::new();
        encode_u64(u64::MAX, &mut buf);
        let mut slice = &buf[..buf.len() - 1];
        assert_eq!(decode_u64(&mut slice).unwrap_err(), Error::UnexpectedEof);
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes cannot be a valid u64 varint.
        let bytes = [0x80u8; 11];
        let mut slice = &bytes[..];
        assert_eq!(decode_u64(&mut slice).unwrap_err(), Error::VarintOverflow);
    }

    #[test]
    fn varint_with_excess_high_bits_is_rejected() {
        // 10th byte may only contribute one bit for u64.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut slice = &bytes[..];
        assert_eq!(decode_u64(&mut slice).unwrap_err(), Error::VarintOverflow);
    }
}
