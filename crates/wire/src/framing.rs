//! Length-prefixed framing for stream transports.
//!
//! TCP delivers a byte stream, so the networked replicas delimit messages with a
//! 4-byte little-endian length prefix followed by the wire-format payload. The
//! [`FrameDecoder`] is an incremental decoder suitable for feeding arbitrary chunks
//! (as produced by socket reads), and [`encode_frame`] produces one framed message.

use bytes::{Buf, BufMut, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::{Error, Result};

/// Default maximum frame size (16 MiB) to guard against corrupt length prefixes.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Serializes `value` and appends a length-prefixed frame to `out`.
///
/// # Errors
///
/// Returns an error if serialization fails or the encoded payload exceeds `u32::MAX`.
pub fn encode_frame<T: Serialize + ?Sized>(value: &T, out: &mut BytesMut) -> Result<()> {
    let payload = crate::to_vec(value)?;
    let len =
        u32::try_from(payload.len()).map_err(|_| Error::LengthOverflow(payload.len() as u64))?;
    out.reserve(4 + payload.len());
    out.put_u32_le(len);
    out.put_slice(&payload);
    Ok(())
}

/// Incremental frame decoder.
///
/// Feed raw bytes with [`FrameDecoder::extend`] and drain complete messages with
/// [`FrameDecoder::decode_next`].
#[derive(Debug)]
pub struct FrameDecoder {
    buffer: BytesMut,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_FRAME)
    }
}

impl FrameDecoder {
    /// Creates a decoder that rejects frames larger than `max_frame` bytes.
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder { buffer: BytesMut::with_capacity(4096), max_frame }
    }

    /// Appends freshly received bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Number of buffered, not yet decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Attempts to decode the next complete frame into a value of type `T`.
    ///
    /// Returns `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] for oversized frames and any payload decoding
    /// error from [`crate::from_slice`].
    pub fn decode_next<T: DeserializeOwned>(&mut self) -> Result<Option<T>> {
        if self.buffer.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&self.buffer[..4]);
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > self.max_frame {
            return Err(Error::FrameTooLarge { announced: len, max: self.max_frame });
        }
        if self.buffer.len() < 4 + len {
            return Ok(None);
        }
        self.buffer.advance(4);
        let payload = self.buffer.split_to(len);
        let value = crate::from_slice(&payload)?;
        Ok(Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Msg {
        id: u64,
        body: String,
    }

    #[test]
    fn frame_roundtrip() {
        let msg = Msg { id: 9, body: "payload".into() };
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf).unwrap();

        let mut decoder = FrameDecoder::default();
        decoder.extend(&buf);
        let decoded: Msg = decoder.decode_next().unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let msg = Msg { id: 1, body: "x".repeat(100) };
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf).unwrap();

        let mut decoder = FrameDecoder::default();
        // Feed one byte at a time; only the final byte completes the frame.
        for (i, byte) in buf.iter().enumerate() {
            decoder.extend(&[*byte]);
            let result: Option<Msg> = decoder.decode_next().unwrap();
            if i + 1 < buf.len() {
                assert!(result.is_none());
            } else {
                assert_eq!(result.unwrap(), msg);
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut buf = BytesMut::new();
        for id in 0..5u64 {
            encode_frame(&Msg { id, body: format!("m{id}") }, &mut buf).unwrap();
        }
        let mut decoder = FrameDecoder::default();
        decoder.extend(&buf);
        for id in 0..5u64 {
            let msg: Msg = decoder.decode_next().unwrap().unwrap();
            assert_eq!(msg.id, id);
        }
        let none: Option<Msg> = decoder.decode_next().unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut decoder = FrameDecoder::new(8);
        decoder.extend(&1024u32.to_le_bytes());
        let err = decoder.decode_next::<Msg>().unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { announced: 1024, max: 8 }));
    }
}
