//! Length-prefixed framing for stream transports.
//!
//! TCP delivers a byte stream, so the networked replicas delimit messages with a
//! 4-byte little-endian length prefix followed by the wire-format payload. The
//! [`FrameDecoder`] is an incremental decoder suitable for feeding arbitrary chunks
//! (as produced by socket reads), [`encode_frame`] produces one framed message, and
//! [`FrameEncoder`] batches many frames into a single contiguous buffer that is
//! handed off as [`Bytes`] without copying — the write-side coalescing path.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::{Error, Result};

/// Default maximum frame size (16 MiB) to guard against corrupt length prefixes.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Serializes `value` and appends a length-prefixed frame to `out`.
///
/// The payload serializes directly into `out` (the length prefix is
/// back-filled afterwards), so no intermediate vector is built per frame.
///
/// # Errors
///
/// Returns an error if serialization fails or the encoded payload exceeds `u32::MAX`;
/// `out` is rolled back to its pre-call state.
pub fn encode_frame<T: Serialize + ?Sized>(value: &T, out: &mut BytesMut) -> Result<()> {
    let frame_start = out.len();
    out.put_u32_le(0);
    if let Err(err) = crate::to_sink(value, out) {
        out.resize(frame_start, 0);
        return Err(err);
    }
    let payload_len = out.len() - frame_start - 4;
    let Ok(len) = u32::try_from(payload_len) else {
        out.resize(frame_start, 0);
        return Err(Error::LengthOverflow(payload_len as u64));
    };
    out[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// How many spent batches the encoder keeps around as reclaim candidates.
/// Steady state needs two allocations in flight (the batch being written by
/// the socket and the one being filled); the headroom absorbs a slow writer.
const SPENT_CAP: usize = 4;

/// Batching frame encoder: serializes values back-to-back into one owned
/// buffer, each behind its length prefix, so a whole outbound queue becomes a
/// single socket write.
///
/// Values serialize directly into the accumulating [`BytesMut`] (the length
/// prefix is back-filled after the payload is written — no intermediate `Vec`
/// per message), and [`FrameEncoder::take`] converts the batch into [`Bytes`]
/// with an O(1) `split_to`/`freeze` — no copy, no allocation.
///
/// The encoder also *recycles* its batch allocations: every taken batch is
/// remembered as a reclaim candidate, and once the consumer (typically the
/// socket write loop) drops its view, the next [`FrameEncoder::take`] reclaims
/// the buffer via [`Bytes::try_into_mut`] instead of allocating. In steady
/// state two allocations ping-pong between "being filled" and "being written",
/// and the encode → take → write cycle performs **zero** allocations — the
/// outbound mirror of the decode path's recycled read buffer, enforced by the
/// `alloc_gate` bench.
#[derive(Debug, Default)]
pub struct FrameEncoder {
    buf: BytesMut,
    /// Taken batches kept as reclaim candidates (bounded by [`SPENT_CAP`]).
    spent: Vec<Bytes>,
    /// Frames encoded into the pending batch (reset by [`FrameEncoder::take`]),
    /// so transports can report frames-per-coalesced-write without parsing
    /// the batch back.
    frames: u64,
}

impl FrameEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        FrameEncoder::default()
    }

    /// Appends one length-prefixed frame for `value`.
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails or the encoded payload exceeds
    /// `u32::MAX`; the buffer is rolled back to its pre-call state.
    pub fn encode<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        let frame_start = self.buf.len();
        self.buf.put_u32_le(0);
        if let Err(err) = crate::to_sink(value, &mut self.buf) {
            self.buf.resize(frame_start, 0);
            return Err(err);
        }
        let payload_len = self.buf.len() - frame_start - 4;
        let Ok(len) = u32::try_from(payload_len) else {
            self.buf.resize(frame_start, 0);
            return Err(Error::LengthOverflow(payload_len as u64));
        };
        self.buf[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
        self.frames += 1;
        Ok(())
    }

    /// Number of encoded bytes pending.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Number of frames in the pending batch.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Returns `true` if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Discards encoded bytes past `len` (e.g. to roll a multi-frame fill
    /// back to a known-good boundary after a mid-batch failure).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`FrameEncoder::len`].
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.buf.len(), "truncate past end of batch");
        self.buf.resize(len, 0);
        // Recount the surviving frames by walking the length prefixes — the
        // cold rollback path pays O(frames) so the hot paths stay free.
        let mut frames = 0;
        let mut position = 0;
        while position + 4 <= len {
            let prefix: [u8; 4] = self.buf[position..position + 4].try_into().expect("4 bytes");
            position += 4 + u32::from_le_bytes(prefix) as usize;
            frames += 1;
        }
        self.frames = frames;
    }

    /// Takes the encoded batch as [`Bytes`], leaving the encoder empty.
    ///
    /// O(1) and allocation-free in steady state: the batch is split off by
    /// refcount bump, and the buffer for the *next* batch is reclaimed from an
    /// earlier batch whose consumer has dropped its view.
    pub fn take(&mut self) -> Bytes {
        let len = self.buf.len();
        self.frames = 0;
        let batch = self.buf.split_to(len).freeze();
        // Detach from the batch's allocation so the consumer's drop makes it
        // reclaimable, installing a recycled buffer (or a fresh one if every
        // candidate is still in flight) for the next batch.
        self.buf = self.reclaim().unwrap_or_default();
        if self.spent.len() < SPENT_CAP {
            self.spent.push(batch.clone());
        }
        batch
    }

    /// Returns a spent batch buffer nothing else references anymore, cleared
    /// for reuse, or `None` while every candidate is still being written.
    fn reclaim(&mut self) -> Option<BytesMut> {
        let index = self.spent.iter().position(Bytes::is_unique)?;
        let mut buf = self.spent.swap_remove(index).try_into_mut().ok()?;
        buf.clear();
        Some(buf)
    }
}

/// Incremental frame decoder.
///
/// Feed raw bytes with [`FrameDecoder::extend`] and drain complete messages with
/// [`FrameDecoder::decode_next`].
#[derive(Debug)]
pub struct FrameDecoder {
    buffer: BytesMut,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_FRAME)
    }
}

impl FrameDecoder {
    /// Creates a decoder that rejects frames larger than `max_frame` bytes.
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder { buffer: BytesMut::with_capacity(4096), max_frame }
    }

    /// Appends freshly received bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Exposes at least `min` writable bytes at the buffer tail, so a socket
    /// read can land directly in the frame buffer instead of staging through a
    /// separate chunk that [`FrameDecoder::extend`] would copy.
    ///
    /// Follow the read with [`FrameDecoder::commit`] to mark the bytes
    /// actually written as received frame data.
    pub fn read_buf(&mut self, min: usize) -> &mut [u8] {
        self.buffer.tail_mut(min)
    }

    /// Marks `count` bytes at the tail — just written through
    /// [`FrameDecoder::read_buf`] — as received frame data.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the writable span the last
    /// [`FrameDecoder::read_buf`] call exposed.
    pub fn commit(&mut self, count: usize) {
        self.buffer.advance_tail(count);
    }

    /// Number of buffered, not yet decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Attempts to decode the next complete frame into a value of type `T`.
    ///
    /// Returns `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] for oversized frames and any payload decoding
    /// error from [`crate::from_slice`].
    pub fn decode_next<T: DeserializeOwned>(&mut self) -> Result<Option<T>> {
        match self.next_frame()? {
            Some(payload) => Ok(Some(crate::from_slice(&payload)?)),
            None => Ok(None),
        }
    }

    /// Extracts the next complete frame as a zero-copy [`Bytes`] view.
    ///
    /// The view aliases the decoder's read buffer (refcounted, no copy) and
    /// stays valid after the decoder buffers more data or is dropped: later
    /// writes land in fresh capacity rather than disturbing live views.
    /// Decode it with [`crate::from_bytes`] to borrow payload fields straight
    /// out of the socket buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] for oversized frames.
    pub fn decode_next_view(&mut self) -> Result<Option<Bytes>> {
        Ok(self.next_frame()?.map(BytesMut::freeze))
    }

    /// Extracts the next complete frame's raw payload without deserializing.
    ///
    /// Returns `Ok(None)` if more bytes are needed. Lets a transport hand the
    /// undecoded payload across a channel and defer (or skip) deserialization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameTooLarge`] for oversized frames.
    pub fn next_frame(&mut self) -> Result<Option<BytesMut>> {
        if self.buffer.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&self.buffer[..4]);
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > self.max_frame {
            return Err(Error::FrameTooLarge { announced: len, max: self.max_frame });
        }
        if self.buffer.len() < 4 + len {
            return Ok(None);
        }
        self.buffer.advance(4);
        Ok(Some(self.buffer.split_to(len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Msg {
        id: u64,
        body: String,
    }

    #[test]
    fn frame_roundtrip() {
        let msg = Msg { id: 9, body: "payload".into() };
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf).unwrap();

        let mut decoder = FrameDecoder::default();
        decoder.extend(&buf);
        let decoded: Msg = decoder.decode_next().unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let msg = Msg { id: 1, body: "x".repeat(100) };
        let mut buf = BytesMut::new();
        encode_frame(&msg, &mut buf).unwrap();

        let mut decoder = FrameDecoder::default();
        // Feed one byte at a time; only the final byte completes the frame.
        for (i, byte) in buf.iter().enumerate() {
            decoder.extend(&[*byte]);
            let result: Option<Msg> = decoder.decode_next().unwrap();
            if i + 1 < buf.len() {
                assert!(result.is_none());
            } else {
                assert_eq!(result.unwrap(), msg);
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut buf = BytesMut::new();
        for id in 0..5u64 {
            encode_frame(&Msg { id, body: format!("m{id}") }, &mut buf).unwrap();
        }
        let mut decoder = FrameDecoder::default();
        decoder.extend(&buf);
        for id in 0..5u64 {
            let msg: Msg = decoder.decode_next().unwrap().unwrap();
            assert_eq!(msg.id, id);
        }
        let none: Option<Msg> = decoder.decode_next().unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn frame_encoder_batches_without_copying() {
        let mut encoder = FrameEncoder::new();
        for id in 0..4u64 {
            encoder.encode(&Msg { id, body: format!("b{id}") }).unwrap();
        }
        let batch = encoder.take();
        assert!(encoder.is_empty());

        // The batch must be byte-identical to four individually encoded frames.
        let mut reference = BytesMut::new();
        for id in 0..4u64 {
            encode_frame(&Msg { id, body: format!("b{id}") }, &mut reference).unwrap();
        }
        assert_eq!(&batch[..], &reference[..]);

        let mut decoder = FrameDecoder::default();
        decoder.extend(&batch);
        for id in 0..4u64 {
            let msg: Msg = decoder.decode_next().unwrap().unwrap();
            assert_eq!(msg.id, id);
        }
    }

    #[test]
    fn take_recycles_batch_allocations_once_views_drop() {
        let mut encoder = FrameEncoder::new();
        // Warm up: let the ping-pong buffers reach their steady-state shape.
        let mut previous = None;
        for round in 0..8u64 {
            encoder.encode(&Msg { id: round, body: "steady-state".into() }).unwrap();
            let batch = encoder.take();
            assert!(!batch.is_empty());
            // Simulate the socket writer finishing the *previous* batch while
            // the current one is still in flight.
            previous = Some(batch);
        }
        drop(previous);

        // Steady state: every subsequent take must reuse one of the warmed
        // allocations rather than allocate fresh ones.
        let mut seen = std::collections::HashSet::new();
        for round in 0..16u64 {
            encoder.encode(&Msg { id: round, body: "steady-state".into() }).unwrap();
            let batch = encoder.take();
            seen.insert(batch.as_ref().as_ptr() as usize);
            drop(batch);
        }
        // At most three warmed allocations circulate (being filled, in
        // flight at the writer, spare) — never a fresh one per batch.
        assert!(seen.len() <= 3, "steady-state batches cycle through recycled allocations");
    }

    #[test]
    fn recycled_batches_are_byte_identical_to_fresh_ones() {
        let mut recycled = FrameEncoder::new();
        for round in 0..12u64 {
            let mut fresh = FrameEncoder::new();
            for id in 0..3u64 {
                let msg = Msg { id: round * 3 + id, body: format!("r{round}m{id}") };
                recycled.encode(&msg).unwrap();
                fresh.encode(&msg).unwrap();
            }
            assert_eq!(&recycled.take()[..], &fresh.take()[..]);
        }
    }

    #[test]
    fn truncate_rolls_back_to_a_frame_boundary() {
        let mut encoder = FrameEncoder::new();
        encoder.encode(&Msg { id: 1, body: "keep".into() }).unwrap();
        let boundary = encoder.len();
        encoder.encode(&Msg { id: 2, body: "discard".into() }).unwrap();
        assert_eq!(encoder.frames(), 2);
        encoder.truncate(boundary);
        assert_eq!(encoder.frames(), 1, "truncate recounts surviving frames");
        let mut decoder = FrameDecoder::default();
        decoder.extend(&encoder.take());
        let msg: Msg = decoder.decode_next().unwrap().unwrap();
        assert_eq!(msg.id, 1);
        assert!(decoder.decode_next::<Msg>().unwrap().is_none());
    }

    #[test]
    fn next_frame_returns_raw_payloads() {
        let msg = Msg { id: 3, body: "raw".into() };
        let mut encoder = FrameEncoder::new();
        encoder.encode(&msg).unwrap();
        let mut decoder = FrameDecoder::default();
        decoder.extend(&encoder.take());
        let payload = decoder.next_frame().unwrap().unwrap();
        let decoded: Msg = crate::from_slice(&payload).unwrap();
        assert_eq!(decoded, msg);
        assert!(decoder.next_frame().unwrap().is_none());
    }

    #[test]
    fn failed_encode_rolls_back_the_batch() {
        // Unknown-length sequences are unserializable in this format.
        struct Unsized;
        impl Serialize for Unsized {
            fn serialize<S: serde::Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                use serde::ser::SerializeSeq;
                let mut seq = serializer.serialize_seq(None)?;
                seq.serialize_element(&1u8)?;
                seq.end()
            }
        }

        let mut encoder = FrameEncoder::new();
        encoder.encode(&Msg { id: 1, body: "keep".into() }).unwrap();
        let len_before = encoder.len();
        assert!(encoder.encode(&Unsized).is_err());
        assert_eq!(encoder.len(), len_before);
        let mut decoder = FrameDecoder::default();
        decoder.extend(&encoder.take());
        let msg: Msg = decoder.decode_next().unwrap().unwrap();
        assert_eq!(msg.id, 1);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn decode_next_view_aliases_the_read_buffer() {
        let msg = Msg { id: 11, body: "view".into() };
        let mut encoder = FrameEncoder::new();
        encoder.encode(&msg).unwrap();
        let mut decoder = FrameDecoder::default();
        decoder.extend(&encoder.take());

        let view = decoder.decode_next_view().unwrap().unwrap();
        // Buffer more frames and drop the decoder: the view must stay intact.
        let mut encoder = FrameEncoder::new();
        encoder.encode(&Msg { id: 12, body: "later".into() }).unwrap();
        decoder.extend(&encoder.take());
        drop(decoder);
        let decoded: Msg = crate::from_bytes(&view).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn read_buf_commit_feeds_frames_without_staging_copies() {
        let mut reference = BytesMut::new();
        for id in 0..3u64 {
            encode_frame(&Msg { id, body: format!("direct{id}") }, &mut reference).unwrap();
        }

        // Simulate socket reads of awkward sizes landing directly in the tail.
        let mut decoder = FrameDecoder::default();
        let mut offset = 0;
        let mut seen = 0u64;
        while offset < reference.len() {
            let take = (reference.len() - offset).min(7);
            let buf = decoder.read_buf(7);
            assert!(buf.len() >= 7);
            buf[..take].copy_from_slice(&reference[offset..offset + take]);
            decoder.commit(take);
            offset += take;
            while let Some(msg) = decoder.decode_next::<Msg>().unwrap() {
                assert_eq!(msg.id, seen);
                seen += 1;
            }
        }
        assert_eq!(seen, 3);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut decoder = FrameDecoder::new(8);
        decoder.extend(&1024u32.to_le_bytes());
        let err = decoder.decode_next::<Msg>().unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { announced: 1024, max: 8 }));
    }
}
