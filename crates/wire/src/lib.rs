//! # wire — compact binary serde format and framing
//!
//! `wire` is the serialization substrate used by the networked deployment of the
//! CRDT Paxos reproduction. It provides:
//!
//! * a compact, non-self-describing binary [serde](https://serde.rs) format
//!   ([`to_vec`], [`from_slice`]) using LEB128 variable-length integers,
//! * length-prefixed message framing ([`framing`]) for stream transports such as TCP.
//!
//! The format is intentionally small and predictable: protocol messages carry a CRDT
//! payload plus a single round counter (the paper's key message-size claim), so the
//! codec adds only a few bytes of overhead per message.
//!
//! ## Example
//!
//! ```
//! # use serde::{Serialize, Deserialize};
//! # fn main() -> Result<(), wire::Error> {
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Ping { seq: u64, payload: Vec<u32> }
//!
//! let msg = Ping { seq: 7, payload: vec![1, 2, 3] };
//! let bytes = wire::to_vec(&msg)?;
//! let back: Ping = wire::from_slice(&bytes)?;
//! assert_eq!(msg, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod de;
mod error;
pub mod framing;
mod ser;
mod sink;
pub mod varint;

pub use de::{from_bytes, from_bytes_in_place, from_slice, from_slice_in_place, Deserializer};
pub use error::{Error, Result};
pub use ser::{to_sink, to_vec, to_writer, Serializer};
pub use sink::Sink;

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let bytes = to_vec(value).expect("serialize");
        from_slice(&bytes).expect("deserialize")
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    enum Sample {
        Unit,
        NewType(u64),
        Tuple(u8, String),
        Struct { a: i64, b: Vec<bool> },
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct Nested {
        name: String,
        values: BTreeMap<String, Vec<i32>>,
        flag: Option<Sample>,
        raw: Vec<u8>,
        pair: (u16, i16),
    }

    #[test]
    fn roundtrip_primitives() {
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&0u8), 0u8);
        assert_eq!(roundtrip(&255u8), 255u8);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&i64::MIN), i64::MIN);
        assert_eq!(roundtrip(&-1i32), -1i32);
        assert_eq!(roundtrip(&3.5f64), 3.5f64);
        assert_eq!(roundtrip(&f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(roundtrip(&'λ'), 'λ');
        assert_eq!(roundtrip(&u128::MAX), u128::MAX);
        assert_eq!(roundtrip(&i128::MIN), i128::MIN);
    }

    #[test]
    fn roundtrip_strings_and_collections() {
        assert_eq!(roundtrip(&String::new()), String::new());
        assert_eq!(roundtrip(&"hello κόσμε".to_string()), "hello κόσμε");
        assert_eq!(roundtrip(&vec![1u64, 2, 3]), vec![1u64, 2, 3]);
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u32);
        map.insert("b".to_string(), 2u32);
        assert_eq!(roundtrip(&map), map);
        assert_eq!(roundtrip(&Some(42u8)), Some(42u8));
        assert_eq!(roundtrip(&Option::<u8>::None), None);
    }

    #[test]
    fn roundtrip_enums_and_structs() {
        for sample in [
            Sample::Unit,
            Sample::NewType(99),
            Sample::Tuple(3, "x".into()),
            Sample::Struct { a: -7, b: vec![true, false] },
        ] {
            assert_eq!(roundtrip(&sample), sample);
        }

        let mut values = BTreeMap::new();
        values.insert("k".to_string(), vec![-1, 0, 1]);
        let nested = Nested {
            name: "nested".into(),
            values,
            flag: Some(Sample::NewType(1)),
            raw: vec![0, 255, 128],
            pair: (65535, -32768),
        };
        assert_eq!(roundtrip(&nested), nested);
    }

    #[test]
    fn in_place_decode_matches_owned() {
        let mut values = BTreeMap::new();
        values.insert("k".to_string(), vec![-1, 0, 1]);
        values.insert("z".to_string(), vec![9]);
        let nested = Nested {
            name: "nested".into(),
            values,
            flag: Some(Sample::NewType(1)),
            raw: vec![0, 255, 128],
            pair: (65535, -32768),
        };
        let bytes = to_vec(&nested).unwrap();

        // Scratch with different shape everywhere: stale map keys, longer
        // strings, a different enum variant, mismatched vec lengths.
        let mut stale = BTreeMap::new();
        stale.insert("k".to_string(), vec![7; 10]);
        stale.insert("stale-key".to_string(), vec![]);
        let mut place = Nested {
            name: "a much longer resident name".into(),
            values: stale,
            flag: Some(Sample::Struct { a: 0, b: vec![true] }),
            raw: vec![1],
            pair: (0, 0),
        };
        from_slice_in_place(&bytes, &mut place).unwrap();
        assert_eq!(place, nested);

        // Same-variant enum re-decode goes field-wise.
        let mut place = Sample::Tuple(1, "resident".into());
        let target = Sample::Tuple(2, "bb".into());
        from_slice_in_place(&to_vec(&target).unwrap(), &mut place).unwrap();
        assert_eq!(place, target);

        // Variant switch falls back to owned construction.
        let target = Sample::Unit;
        from_slice_in_place(&to_vec(&target).unwrap(), &mut place).unwrap();
        assert_eq!(place, target);
    }

    #[test]
    fn compactness_small_values() {
        // A tiny message should stay tiny: varints keep small integers to one byte.
        #[derive(Serialize)]
        struct Small {
            a: u64,
            b: u64,
            c: bool,
        }
        let bytes = to_vec(&Small { a: 1, b: 2, c: true }).unwrap();
        assert_eq!(bytes.len(), 3);
    }

    #[test]
    fn deserialize_rejects_trailing_bytes() {
        let mut bytes = to_vec(&7u64).unwrap();
        bytes.push(0);
        let err = from_slice::<u64>(&bytes).unwrap_err();
        assert!(matches!(err, Error::TrailingBytes(_)));
    }

    #[test]
    fn deserialize_rejects_truncated_input() {
        let bytes = to_vec(&"hello world".to_string()).unwrap();
        let err = from_slice::<String>(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, Error::UnexpectedEof));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let err = from_slice::<bool>(&[7]).unwrap_err();
        assert!(matches!(err, Error::InvalidBool(7)));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        // length 2, bytes 0xff 0xff is invalid UTF-8
        let err = from_slice::<String>(&[2, 0xff, 0xff]).unwrap_err();
        assert!(matches!(err, Error::InvalidUtf8));
    }

    #[test]
    fn option_tag_validation() {
        let err = from_slice::<Option<u8>>(&[2, 0]).unwrap_err();
        assert!(matches!(err, Error::InvalidOptionTag(2)));
    }
}
