//! The byte sink abstraction the serializer writes through.
//!
//! The wire format is append-only, so the serializer needs exactly two
//! operations from its output buffer: push one byte, push a slice. Abstracting
//! them lets the same serializer fill a plain `Vec<u8>` (owned encodes,
//! [`crate::to_vec`] / [`crate::to_writer`]) or a [`bytes::BytesMut`] batch
//! buffer ([`crate::framing::FrameEncoder`]) — the latter is what makes the
//! outbound hot path allocation-free: frames are serialized straight into the
//! recycled per-peer batch allocation, with no intermediate vector per frame.

use bytes::BytesMut;

/// An append-only byte buffer the serializer can write into.
pub trait Sink {
    /// Appends one byte.
    fn put_byte(&mut self, byte: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, bytes: &[u8]);
}

impl Sink for Vec<u8> {
    fn put_byte(&mut self, byte: u8) {
        self.push(byte);
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl Sink for BytesMut {
    fn put_byte(&mut self, byte: u8) {
        self.extend_from_slice(&[byte]);
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(sink: &mut impl Sink) {
        sink.put_byte(0xab);
        sink.put_slice(b"tail");
    }

    #[test]
    fn vec_and_bytes_mut_sinks_agree() {
        let mut vec = Vec::new();
        let mut buf = BytesMut::new();
        fill(&mut vec);
        fill(&mut buf);
        assert_eq!(vec.as_slice(), &buf[..]);
    }
}
