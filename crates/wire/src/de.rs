//! Serde deserializer for the wire format.

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
use serde::Deserialize;

use crate::error::{Error, Result};
use crate::varint;

/// Deserializes a value of type `T` from `input`, requiring the whole slice is consumed.
///
/// # Errors
///
/// Returns [`Error::TrailingBytes`] if bytes remain after decoding, plus any decoding
/// error such as [`Error::UnexpectedEof`] or [`Error::InvalidUtf8`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wire::Error> {
/// let bytes = wire::to_vec(&vec![1u16, 2, 3])?;
/// let back: Vec<u16> = wire::from_slice(&bytes)?;
/// assert_eq!(back, [1, 2, 3]);
/// # Ok(())
/// # }
/// ```
pub fn from_slice<'de, T: Deserialize<'de>>(input: &'de [u8]) -> Result<T> {
    let mut deserializer = Deserializer::new(input);
    let value = T::deserialize(&mut deserializer)?;
    if deserializer.input.is_empty() {
        Ok(value)
    } else {
        Err(Error::TrailingBytes(deserializer.input.len()))
    }
}

/// Deserializes a value of type `T` from a refcounted [`Bytes`](bytes::Bytes)
/// view, borrowing string and byte fields from it instead of copying them.
///
/// The decoded value may borrow from `input` (via `&str` / `&[u8]` fields), so
/// it cannot outlive the view — but the view itself is a cheap `Arc` slice of
/// the transport read buffer, which is exactly what makes the inbound path
/// copy-free: socket bytes are written once and then only ever aliased.
///
/// # Errors
///
/// Identical to [`from_slice`]: the same bytes produce the same value or the
/// same error whether decoded borrowed or owned.
pub fn from_bytes<'de, T: Deserialize<'de>>(input: &'de bytes::Bytes) -> Result<T> {
    from_slice(input)
}

/// Deserializes from `input` into an existing `place`, reusing its resident
/// heap allocations (`String` capacity, `Vec` slots, map nodes) instead of
/// building a fresh value.
///
/// On the steady-state inbound path every frame carries the same message
/// shape, so decoding into a per-worker scratch value allocates nothing.
///
/// # Errors
///
/// Identical to [`from_slice`]. On error `place` may hold a partially
/// overwritten value and should not be interpreted until the next successful
/// decode.
pub fn from_slice_in_place<'de, T: Deserialize<'de>>(
    input: &'de [u8],
    place: &mut T,
) -> Result<()> {
    let mut deserializer = Deserializer::new(input);
    T::deserialize_in_place(&mut deserializer, place)?;
    if deserializer.input.is_empty() {
        Ok(())
    } else {
        Err(Error::TrailingBytes(deserializer.input.len()))
    }
}

/// [`from_slice_in_place`] over a refcounted [`Bytes`](bytes::Bytes) view.
///
/// # Errors
///
/// Identical to [`from_slice`].
pub fn from_bytes_in_place<'de, T: Deserialize<'de>>(
    input: &'de bytes::Bytes,
    place: &mut T,
) -> Result<()> {
    from_slice_in_place(input, place)
}

/// Streaming deserializer reading from a byte slice.
#[derive(Debug)]
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    /// Returns the number of not-yet-consumed bytes.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take_byte(&mut self) -> Result<u8> {
        let (&first, rest) = self.input.split_first().ok_or(Error::UnexpectedEof)?;
        self.input = rest;
        Ok(first)
    }

    fn take_bytes(&mut self, len: usize) -> Result<&'de [u8]> {
        if self.input.len() < len {
            return Err(Error::UnexpectedEof);
        }
        let (head, rest) = self.input.split_at(len);
        self.input = rest;
        Ok(head)
    }

    fn read_len(&mut self) -> Result<usize> {
        let len = varint::decode_u64(&mut self.input)?;
        usize::try_from(len).map_err(|_| Error::LengthOverflow(len))
    }

    fn read_u64(&mut self) -> Result<u64> {
        varint::decode_u64(&mut self.input)
    }

    fn read_i64(&mut self) -> Result<i64> {
        varint::decode_i64(&mut self.input)
    }
}

macro_rules! deserialize_unsigned {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let value = self.read_u64()?;
            let narrowed = <$ty>::try_from(value).map_err(|_| {
                Error::Message(format!("value {value} out of range for {}", stringify!($ty)))
            })?;
            visitor.$visit(narrowed)
        }
    };
}

macro_rules! deserialize_signed {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let value = self.read_i64()?;
            let narrowed = <$ty>::try_from(value).map_err(|_| {
                Error::Message(format!("value {value} out of range for {}", stringify!($ty)))
            })?;
            visitor.$visit(narrowed)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_byte()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(Error::InvalidBool(other)),
        }
    }

    deserialize_unsigned!(deserialize_u8, visit_u8, u8);
    deserialize_unsigned!(deserialize_u16, visit_u16, u16);
    deserialize_unsigned!(deserialize_u32, visit_u32, u32);
    deserialize_signed!(deserialize_i8, visit_i8, i8);
    deserialize_signed!(deserialize_i16, visit_i16, i16);
    deserialize_signed!(deserialize_i32, visit_i32, i32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u64(self.read_u64()?)
    }

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i64(self.read_i64()?)
    }

    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u128(varint::decode_u128(&mut self.input)?)
    }

    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i128(varint::decode_i128(&mut self.input)?)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take_bytes(4)?;
        visitor.visit_f32(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take_bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        visitor.visit_f64(f64::from_le_bytes(raw))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let value = self.read_u64()?;
        let code = u32::try_from(value).map_err(|_| Error::InvalidChar(u32::MAX))?;
        let c = char::from_u32(code).ok_or(Error::InvalidChar(code))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        let bytes = self.take_bytes(len)?;
        let text = std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?;
        visitor.visit_borrowed_str(text)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        let bytes = self.take_bytes(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_byte()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(Error::InvalidOptionTag(other)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_map(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for CountedAccess<'a, 'de> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> de::MapAccess<'de> for CountedAccess<'a, 'de> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self::Variant)> {
        let index = self.de.read_u64()?;
        let index = u32::try_from(index).map_err(|_| Error::LengthOverflow(index))?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_vec;

    #[test]
    fn deserializer_reports_remaining_bytes() {
        let bytes = to_vec(&(1u8, 2u8)).unwrap();
        let mut de = Deserializer::new(&bytes);
        assert_eq!(de.remaining(), 2);
        let _: u8 = Deserialize::deserialize(&mut de).unwrap();
        assert_eq!(de.remaining(), 1);
    }

    #[test]
    fn out_of_range_narrowing_is_an_error() {
        let bytes = to_vec(&300u64).unwrap();
        let err = from_slice::<u8>(&bytes).unwrap_err();
        assert!(matches!(err, Error::Message(_)));
    }

    #[test]
    fn char_validation() {
        // 0xD800 is a surrogate and not a valid char.
        let bytes = to_vec(&0xD800u32).unwrap();
        let err = from_slice::<char>(&bytes).unwrap_err();
        assert!(matches!(err, Error::InvalidChar(0xD800)));
    }

    #[test]
    fn borrowed_str_deserialization() {
        let bytes = to_vec(&"borrowed".to_string()).unwrap();
        let text: &str = from_slice(&bytes).unwrap();
        assert_eq!(text, "borrowed");
    }
}
