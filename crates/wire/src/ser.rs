//! Serde serializer for the wire format.

use serde::ser::{self, Serialize};

use crate::error::{Error, Result};
use crate::sink::Sink;
use crate::varint;

/// Serializes `value` into a freshly allocated byte vector.
///
/// # Errors
///
/// Returns an error if the value cannot be represented in the wire format, for example
/// an iterator-backed sequence whose length is unknown up front.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wire::Error> {
/// let bytes = wire::to_vec(&(1u8, "two".to_string()))?;
/// let back: (u8, String) = wire::from_slice(&bytes)?;
/// assert_eq!(back.0, 1);
/// # Ok(())
/// # }
/// ```
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    to_writer(value, &mut out)?;
    Ok(out)
}

/// Serializes `value`, appending the encoded bytes to `out`.
///
/// # Errors
///
/// Same error conditions as [`to_vec`].
pub fn to_writer<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<()> {
    to_sink(value, out)
}

/// Serializes `value`, appending the encoded bytes to any [`Sink`] — a
/// `Vec<u8>` or a `bytes::BytesMut` batch buffer. The latter is the outbound
/// hot path: [`crate::framing::FrameEncoder`] serializes frames straight into
/// its recycled batch allocation through this entry point.
///
/// # Errors
///
/// Same error conditions as [`to_vec`].
pub fn to_sink<T: Serialize + ?Sized, S: Sink>(value: &T, out: &mut S) -> Result<()> {
    let mut serializer = Serializer { out };
    value.serialize(&mut serializer)
}

/// Streaming serializer writing into a borrowed byte buffer.
///
/// Most callers should use [`to_vec`] or [`to_writer`]; the type is public so that
/// higher layers (e.g. the framing codec) can reuse buffers.
#[derive(Debug)]
pub struct Serializer<'a, S: Sink = Vec<u8>> {
    out: &'a mut S,
}

impl<'a, S: Sink> Serializer<'a, S> {
    /// Creates a serializer that appends to `out`.
    pub fn new(out: &'a mut S) -> Self {
        Serializer { out }
    }

    fn write_len(&mut self, len: usize) {
        varint::encode_u64(len as u64, self.out);
    }
}

impl<'a, 'b, S: Sink> ser::Serializer for &'a mut Serializer<'b, S> {
    type Ok = ();
    type Error = Error;

    type SerializeSeq = Compound<'a, 'b, S>;
    type SerializeTuple = Compound<'a, 'b, S>;
    type SerializeTupleStruct = Compound<'a, 'b, S>;
    type SerializeTupleVariant = Compound<'a, 'b, S>;
    type SerializeMap = Compound<'a, 'b, S>;
    type SerializeStruct = Compound<'a, 'b, S>;
    type SerializeStructVariant = Compound<'a, 'b, S>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.put_byte(u8::from(v));
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        varint::encode_i64(v, self.out);
        Ok(())
    }

    fn serialize_i128(self, v: i128) -> Result<()> {
        varint::encode_i128(v, self.out);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.serialize_u64(u64::from(v))
    }

    fn serialize_u16(self, v: u16) -> Result<()> {
        self.serialize_u64(u64::from(v))
    }

    fn serialize_u32(self, v: u32) -> Result<()> {
        self.serialize_u64(u64::from(v))
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        varint::encode_u64(v, self.out);
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<()> {
        varint::encode_u128(v, self.out);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.put_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.put_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.write_len(v.len());
        self.out.put_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.write_len(v.len());
        self.out.put_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.put_byte(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.put_byte(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        varint::encode_u64(u64::from(variant_index), self.out);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.write_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        varint::encode_u64(u64::from(variant_index), self.out);
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.write_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        varint::encode_u64(u64::from(variant_index), self.out);
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Helper used for all compound serialization flavours (sequences, maps, structs…).
#[derive(Debug)]
pub struct Compound<'a, 'b, S: Sink = Vec<u8>> {
    ser: &'a mut Serializer<'b, S>,
}

impl<'a, 'b, S: Sink> ser::SerializeSeq for Compound<'a, 'b, S> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b, S: Sink> ser::SerializeTuple for Compound<'a, 'b, S> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b, S: Sink> ser::SerializeTupleStruct for Compound<'a, 'b, S> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b, S: Sink> ser::SerializeTupleVariant for Compound<'a, 'b, S> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b, S: Sink> ser::SerializeMap for Compound<'a, 'b, S> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b, S: Sink> ser::SerializeStruct for Compound<'a, 'b, S> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b, S: Sink> ser::SerializeStructVariant for Compound<'a, 'b, S> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_length_sequences_are_rejected() {
        struct Unsized;
        impl Serialize for Unsized {
            fn serialize<S: ser::Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                use serde::ser::SerializeSeq;
                let mut seq = serializer.serialize_seq(None)?;
                seq.serialize_element(&1u8)?;
                seq.end()
            }
        }
        assert!(matches!(to_vec(&Unsized), Err(Error::UnknownLength)));
    }

    #[test]
    fn buffers_can_be_reused() {
        let mut buf = Vec::new();
        to_writer(&1u8, &mut buf).unwrap();
        to_writer(&2u8, &mut buf).unwrap();
        assert_eq!(buf, vec![1, 2]);
    }
}
