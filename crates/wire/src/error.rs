//! Error type shared by the serializer and deserializer.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while encoding or decoding the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A custom error message produced by serde (e.g. from a `Serialize` impl).
    Message(String),
    /// The input ended before the value was fully decoded.
    UnexpectedEof,
    /// Extra bytes remained after a complete value was decoded.
    TrailingBytes(usize),
    /// A boolean byte was neither `0` nor `1`.
    InvalidBool(u8),
    /// An `Option` tag byte was neither `0` nor `1`.
    InvalidOptionTag(u8),
    /// A decoded string was not valid UTF-8.
    InvalidUtf8,
    /// A decoded char was not a valid Unicode scalar value.
    InvalidChar(u32),
    /// A variable-length integer used more bytes than allowed.
    VarintOverflow,
    /// A decoded length exceeded the configured limit.
    LengthOverflow(u64),
    /// Sequences serialized with this format must know their length up front.
    UnknownLength,
    /// The format is not self-describing, so `deserialize_any` is unsupported.
    NotSelfDescribing,
    /// A frame header announced a payload larger than the configured maximum.
    FrameTooLarge {
        /// Length announced by the frame header.
        announced: usize,
        /// Maximum length permitted by the decoder.
        max: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Message(msg) => write!(f, "{msg}"),
            Error::UnexpectedEof => write!(f, "unexpected end of input"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Error::InvalidBool(b) => write!(f, "invalid boolean byte {b}"),
            Error::InvalidOptionTag(b) => write!(f, "invalid option tag byte {b}"),
            Error::InvalidUtf8 => write!(f, "string payload was not valid UTF-8"),
            Error::InvalidChar(c) => write!(f, "invalid unicode scalar value {c}"),
            Error::VarintOverflow => write!(f, "variable-length integer overflow"),
            Error::LengthOverflow(n) => write!(f, "length {n} exceeds supported maximum"),
            Error::UnknownLength => write!(f, "sequence length must be known up front"),
            Error::NotSelfDescribing => {
                write!(f, "wire format is not self-describing; deserialize_any unsupported")
            }
            Error::FrameTooLarge { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds maximum of {max} bytes")
            }
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::Message("boom".into()),
            Error::UnexpectedEof,
            Error::TrailingBytes(3),
            Error::InvalidBool(9),
            Error::InvalidOptionTag(9),
            Error::InvalidUtf8,
            Error::InvalidChar(0xD800),
            Error::VarintOverflow,
            Error::LengthOverflow(1),
            Error::UnknownLength,
            Error::NotSelfDescribing,
            Error::FrameTooLarge { announced: 10, max: 5 },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
